// Package obs is the zero-dependency tracing core for the serving stack:
// per-request traces made of ordered stage spans with monotonic
// timestamps, head-sampled at the edge, recorded into a bounded
// lock-free ring buffer and served as JSON from /debug/traces.
//
// The design splits a distributed trace into per-participant *records*:
// each process-side participant (HTTP handler, fleet router, replica
// service, drift controller) finishes its own Trace record tagged with a
// site name, and records sharing a trace ID are merged at read time
// (Snapshot). Trace context crosses hops as a 16-hex-digit ID in the
// X-Inputtune-Trace header and, on the binary wire, as an ITX1 frame
// extension (internal/serve), so router-side and replica-side spans land
// under one ID whether the hop is in-process or HTTP.
//
// The disabled path is free: a nil *Tracer and a nil *Trace are both
// valid receivers for every method, and an unsampled request never
// allocates — Start returns nil without reading the clock.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"inputtune/internal/feature"
)

// TraceHeader carries the trace ID (FormatID) across HTTP hops.
const TraceHeader = "X-Inputtune-Trace"

// Span is one timed stage of a request inside a single participant.
// End == Start marks an instantaneous event (cache_hit, eject, ...).
type Span struct {
	Name  string
	Start time.Time
	End   time.Time
}

// Trace is one participant's record of a request. All methods are
// nil-safe: the disabled-sampling fast path passes nil traces through
// the same call sites with no branches at the caller.
type Trace struct {
	tracer    *Tracer
	id        uint64
	site      string
	benchmark string
	errMsg    string
	start     time.Time
	end       time.Time
	spans     []Span // pooled while live; compacted by Finish
}

// spanPool recycles live span buffers between requests; Finish compacts
// into an exact-size immutable slice before publishing to the ring.
var spanPool = feature.NewSlicePool[Span](3, 6)

// ID returns the trace ID, or 0 on a nil trace.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Site returns the participant site name, or "" on a nil trace.
func (t *Trace) Site() string {
	if t == nil {
		return ""
	}
	return t.site
}

// SetBenchmark labels the record with the benchmark once decoded.
func (t *Trace) SetBenchmark(b string) {
	if t == nil {
		return
	}
	t.benchmark = b
}

// SetError records a request error on the trace; a nil error is a no-op.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.errMsg = err.Error()
}

// Now reads the clock for a span start, or returns the zero time on a
// nil trace so disabled paths skip the read entirely.
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a stage that started at start and ends now.
func (t *Trace) Span(name string, start time.Time) {
	if t == nil {
		return
	}
	t.SpanAt(name, start, time.Now())
}

// SpanAt records a stage with explicit bounds (the batcher back-dates
// batch_wait to the enqueue time).
func (t *Trace) SpanAt(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Name: name, Start: start, End: end})
}

// Event records an instantaneous marker.
func (t *Trace) Event(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.spans = append(t.spans, Span{Name: name, Start: now, End: now})
}

// Options configures a Tracer.
type Options struct {
	// SampleEvery head-samples one request in every SampleEvery at
	// Start (1 = every request). <= 0 disables head sampling entirely:
	// Start returns nil without touching the clock or any counter, but
	// Join still records traces begun by an upstream participant.
	SampleEvery int
	// RingSize bounds the trace ring; rounded up to a power of two.
	// Default 256.
	RingSize int
	// SlowestN pins the N slowest finished traces so they survive ring
	// overwrites — the exemplars /metrics links to. Default 8.
	SlowestN int
}

// Tracer owns the sampling decision, ID generation, and the published
// ring. One Tracer is shared by every participant in a process (router
// and all in-process replicas), so cross-hop records merge in one ring.
type Tracer struct {
	sampleEvery uint64
	slowestN    int
	mask        uint64
	ring        []atomic.Pointer[Trace]
	pos         atomic.Uint64
	reqs        atomic.Uint64
	sampled     atomic.Uint64
	finished    atomic.Uint64
	idBase      uint64
	idSeq       atomic.Uint64

	slowMu sync.Mutex
	slow   []*Trace // ascending by duration, len <= slowestN
}

// tracerSeq differentiates idBase across Tracers in one process.
var tracerSeq atomic.Uint64

// splitmix64 is the finalizer from Vigna's SplitMix64 — one round is
// enough to spread sequential counters across the ID space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New builds a Tracer. A nil Tracer is also valid everywhere and means
// tracing is compiled out of the request path.
func New(o Options) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = 256
	}
	size := 1
	for size < o.RingSize {
		size <<= 1
	}
	if o.SlowestN <= 0 {
		o.SlowestN = 8
	}
	every := uint64(0)
	if o.SampleEvery > 0 {
		every = uint64(o.SampleEvery)
	}
	return &Tracer{
		sampleEvery: every,
		slowestN:    o.SlowestN,
		mask:        uint64(size - 1),
		ring:        make([]atomic.Pointer[Trace], size),
		idBase:      splitmix64(uint64(time.Now().UnixNano()) ^ tracerSeq.Add(1)<<56),
	}
}

// Enabled reports whether the tracer exists at all.
func (tr *Tracer) Enabled() bool { return tr != nil }

// newID returns a fresh nonzero trace ID.
func (tr *Tracer) newID() uint64 {
	id := splitmix64(tr.idBase + tr.idSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Start makes the head-sampling decision for a request entering at this
// participant and returns a live trace record, or nil when the request
// is not sampled. The nil path costs one atomic add and no allocations.
func (tr *Tracer) Start(site string) *Trace {
	if tr == nil || tr.sampleEvery == 0 {
		return nil
	}
	if n := tr.reqs.Add(1); n%tr.sampleEvery != 0 {
		return nil
	}
	return tr.begin(site, tr.newID())
}

// StartForced begins a trace regardless of the sampling rate — for rare
// control-plane lifecycles (drift retrains) that should always be
// visible. Returns nil only on a nil tracer.
func (tr *Tracer) StartForced(site string) *Trace {
	if tr == nil {
		return nil
	}
	tr.reqs.Add(1)
	return tr.begin(site, tr.newID())
}

// Join continues a trace begun elsewhere (header or frame extension):
// the sampling decision was made at the edge, so a joined record is
// always taken. Returns nil on a nil tracer or a zero ID.
func (tr *Tracer) Join(site string, id uint64) *Trace {
	if tr == nil || id == 0 {
		return nil
	}
	return tr.begin(site, id)
}

func (tr *Tracer) begin(site string, id uint64) *Trace {
	tr.sampled.Add(1)
	return &Trace{
		tracer: tr,
		id:     id,
		site:   site,
		start:  time.Now(),
		spans:  spanPool.Get(8),
	}
}

// Finish seals a record and publishes it to the ring. The live pooled
// span buffer is compacted into an exact-size immutable slice first, so
// concurrent Snapshot readers never see a slice that Put may recycle.
// Nil traces are ignored; finishing the same trace twice is a bug.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.end = time.Now()
	final := make([]Span, len(t.spans))
	copy(final, t.spans)
	spanPool.Put(t.spans)
	t.spans = final
	tr.finished.Add(1)
	tr.ring[tr.pos.Add(1)&tr.mask].Store(t)
	tr.noteSlow(t)
}

// noteSlow keeps the slowest-N finished records pinned outside the ring.
func (tr *Tracer) noteSlow(t *Trace) {
	d := t.end.Sub(t.start)
	tr.slowMu.Lock()
	defer tr.slowMu.Unlock()
	if len(tr.slow) >= tr.slowestN {
		if d <= tr.slow[0].end.Sub(tr.slow[0].start) {
			return
		}
		tr.slow = tr.slow[1:]
	}
	i := 0
	for i < len(tr.slow) && tr.slow[i].end.Sub(tr.slow[i].start) < d {
		i++
	}
	tr.slow = append(tr.slow, nil)
	copy(tr.slow[i+1:], tr.slow[i:])
	tr.slow[i] = t
}

// Stats are the tracer's lifetime counters.
type Stats struct {
	SampleEvery int    `json:"sample_every"`
	RingSize    int    `json:"ring_size"`
	Requests    uint64 `json:"requests"`
	Sampled     uint64 `json:"sampled"`
	Finished    uint64 `json:"finished"`
}

// Stats returns the tracer counters (zero value on a nil tracer).
func (tr *Tracer) Stats() Stats {
	if tr == nil {
		return Stats{}
	}
	return Stats{
		SampleEvery: int(tr.sampleEvery),
		RingSize:    len(tr.ring),
		Requests:    tr.reqs.Load(),
		Sampled:     tr.sampled.Load(),
		Finished:    tr.finished.Load(),
	}
}
