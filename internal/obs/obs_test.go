package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every method must be a no-op on nil receivers — the disabled path
	// relies on it.
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Start("x") != nil || tr.StartForced("x") != nil || tr.Join("x", 7) != nil {
		t.Fatal("nil tracer started a trace")
	}
	tr.Finish(nil)
	if s := tr.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer stats: %+v", s)
	}
	if got := tr.Snapshot(10); len(got) != 0 {
		t.Fatalf("nil tracer snapshot: %v", got)
	}
	var tc *Trace
	tc.SetBenchmark("sort")
	tc.SetError(nil)
	tc.Span("x", time.Now())
	tc.SpanAt("x", time.Now(), time.Now())
	tc.Event("x")
	if tc.ID() != 0 || tc.Site() != "" {
		t.Fatal("nil trace has identity")
	}
	if !tc.Now().IsZero() {
		t.Fatal("nil trace read the clock")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Options{SampleEvery: 4})
	var sampled int
	for i := 0; i < 40; i++ {
		if tc := tr.Start("serve"); tc != nil {
			sampled++
			tr.Finish(tc)
		}
	}
	if sampled != 10 {
		t.Fatalf("sample-every-4 over 40 requests traced %d, want 10", sampled)
	}
	st := tr.Stats()
	if st.Requests != 40 || st.Sampled != 10 || st.Finished != 10 {
		t.Fatalf("stats: %+v", st)
	}

	// SampleEvery 0 disables Start entirely but Join still records.
	off := New(Options{SampleEvery: 0})
	if off.Start("serve") != nil {
		t.Fatal("disabled tracer sampled a request")
	}
	if off.Join("serve", 99) == nil {
		t.Fatal("disabled tracer refused a joined trace")
	}
	if off.Join("serve", 0) != nil {
		t.Fatal("joined a zero trace ID")
	}
}

// TestDisabledPathAllocations pins the zero-allocation guarantee the
// serving path depends on: with sampling off (or no tracer at all), one
// Start+method-calls+Finish round costs nothing.
func TestDisabledPathAllocations(t *testing.T) {
	off := New(Options{SampleEvery: 0})
	var nilTr *Tracer
	for name, tr := range map[string]*Tracer{"sample-zero": off, "nil": nilTr} {
		allocs := testing.AllocsPerRun(100, func() {
			tc := tr.Start("serve")
			tc.SetBenchmark("sort")
			tc.Span("decode", tc.Now())
			tc.Event("cache_hit")
			tr.Finish(tc)
		})
		if allocs != 0 {
			t.Errorf("%s tracer: %v allocs per untraced request, want 0", name, allocs)
		}
	}
}

func TestRingOverwriteAndSlowest(t *testing.T) {
	tr := New(Options{SampleEvery: 1, RingSize: 4, SlowestN: 2})
	// One deliberately slow trace, then enough fast ones to overwrite the
	// whole ring: the slow exemplar must survive via the slowest-N pin.
	slow := tr.Start("serve")
	slow.SetBenchmark("slowest")
	time.Sleep(5 * time.Millisecond)
	tr.Finish(slow)
	slowID := slow.ID()
	for i := 0; i < 16; i++ {
		tr.Finish(tr.Start("serve"))
	}
	found := false
	for _, ex := range tr.Exemplars() {
		if ex.TraceID == FormatID(slowID) {
			found = true
			if ex.Benchmark != "slowest" {
				t.Fatalf("exemplar benchmark: %q", ex.Benchmark)
			}
		}
	}
	if !found {
		t.Fatal("slow trace evicted from exemplars by ring overwrite")
	}
	if got := len(tr.Snapshot(100)); got > 4+2 {
		t.Fatalf("snapshot returned %d traces from a 4-ring", got)
	}
}

func TestMergeAcrossSites(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	router := tr.Start("router")
	router.SetBenchmark("sort")
	router.Span("route", router.Now())
	id := router.ID()

	replica := tr.Join("replica-1", id)
	replica.Span("classify", replica.Now())
	tr.Finish(replica)
	tr.Finish(router)

	var merged *TraceView
	for _, v := range tr.Snapshot(10) {
		if v.ID == FormatID(id) {
			v := v
			merged = &v
		}
	}
	if merged == nil {
		t.Fatal("merged trace not in snapshot")
	}
	if merged.Benchmark != "sort" {
		t.Fatalf("benchmark: %q", merged.Benchmark)
	}
	if len(merged.Sites) != 2 || merged.Sites[0] != "replica-1" || merged.Sites[1] != "router" {
		t.Fatalf("sites: %v", merged.Sites)
	}
	bySite := map[string]int{}
	for _, sp := range merged.Spans {
		bySite[sp.Site]++
	}
	if bySite["router"] != 1 || bySite["replica-1"] != 1 {
		t.Fatalf("span sites: %v", bySite)
	}
}

func TestIDFormatParse(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex chars", id, s)
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(FormatID(%d)) = %d, %v", id, back, ok)
		}
	}
	for _, bad := range []string{"", "zz", strings.Repeat("f", 17), "0000000000000000"} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID accepted %q", bad)
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	tc := tr.Start("serve")
	tc.SetBenchmark("sort")
	tc.Span("classify", tc.Now())
	tr.Finish(tc)

	h := Handler(tr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var page struct {
		Stats  Stats       `json:"stats"`
		Recent []TraceView `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if page.Stats.Sampled != 1 || len(page.Recent) != 1 {
		t.Fatalf("page: %s", rec.Body.String())
	}
	if page.Recent[0].Benchmark != "sort" || len(page.Recent[0].Spans) != 1 {
		t.Fatalf("recent[0]: %+v", page.Recent[0])
	}
}
