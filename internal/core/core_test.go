package core

import (
	"math"
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
	"inputtune/internal/rng"
)

// synthInput is a list whose hidden "kind" determines which algorithm wins.
type synthInput struct {
	data []float64
	kind int
}

func (s *synthInput) Size() int { return len(s.data) }

// synthProgram: two algorithms; algorithm 0 is 3x faster on kind-0 inputs
// and 3x slower on kind-1 inputs. The "kindness" feature reveals the kind
// (cheap at level 0, more exact at level 2); "noise" is a useless but
// expensive feature.
type synthProgram struct {
	space *choice.Space
	set   *feature.Set
}

func newSynthProgram() *synthProgram {
	sp := choice.NewSpace()
	sp.AddSite("algo", "A", "B")
	kindLevel := func(frac float64) feature.LevelFunc {
		return func(in feature.Input, m *cost.Meter) float64 {
			si := in.(*synthInput)
			n := int(frac * float64(len(si.data)))
			if n < 1 {
				n = 1
			}
			m.Charge(cost.Scan, n)
			// Estimate of kind from a prefix mean: kind-1 inputs hold large
			// values.
			sum := 0.0
			for _, v := range si.data[:n] {
				sum += v
			}
			return sum / float64(n)
		}
	}
	noiseLevel := func(frac float64) feature.LevelFunc {
		return func(in feature.Input, m *cost.Meter) float64 {
			si := in.(*synthInput)
			n := int(frac * float64(len(si.data)))
			if n < 1 {
				n = 1
			}
			m.Charge(cost.Scan, 10*n) // deliberately expensive
			return float64(len(si.data) % 7)
		}
	}
	set := feature.MustNewSet(
		feature.Extractor{Name: "kindness", Levels: []feature.LevelFunc{
			kindLevel(0.05), kindLevel(0.25), kindLevel(1.0),
		}},
		feature.Extractor{Name: "noise", Levels: []feature.LevelFunc{
			noiseLevel(0.05), noiseLevel(0.25), noiseLevel(1.0),
		}},
	)
	return &synthProgram{space: sp, set: set}
}

func (p *synthProgram) Name() string               { return "synth" }
func (p *synthProgram) Space() *choice.Space       { return p.space }
func (p *synthProgram) Features() *feature.Set     { return p.set }
func (p *synthProgram) HasAccuracy() bool          { return false }
func (p *synthProgram) AccuracyThreshold() float64 { return 0 }

func (p *synthProgram) Run(cfg *choice.Config, in Input, m *cost.Meter) float64 {
	si := in.(*synthInput)
	n := len(si.data)
	alt := cfg.Decide(0, n)
	// Matched algorithm costs n; mismatched costs 3n.
	work := n
	if alt != si.kind {
		work = 3 * n
	}
	m.Charge(cost.Compare, work)
	return 1
}

func synthInputs(n int, seed uint64) []Input {
	r := rng.New(seed)
	out := make([]Input, n)
	for i := range out {
		kind := r.Intn(2)
		size := r.IntRange(100, 400)
		data := make([]float64, size)
		for j := range data {
			if kind == 0 {
				data[j] = r.Range(0, 1)
			} else {
				data[j] = r.Range(10, 11)
			}
		}
		out[i] = &synthInput{data: data, kind: kind}
	}
	return out
}

func trainSynth(t *testing.T) (*synthProgram, *Model) {
	t.Helper()
	prog := newSynthProgram()
	inputs := synthInputs(120, 1)
	model := TrainModel(prog, inputs, Options{
		K1: 6, Seed: 2, TunerPopulation: 12, TunerGenerations: 10, Parallel: true,
	})
	return prog, model
}

func TestTrainModelEndToEnd(t *testing.T) {
	prog, model := trainSynth(t)
	if len(model.Landmarks) != 6 {
		t.Fatalf("got %d landmarks", len(model.Landmarks))
	}
	// Deploy on fresh inputs: the model should pick the matched algorithm
	// nearly always, so mean cost should be close to n (not 3n).
	test := synthInputs(80, 99)
	matched := 0
	for _, in := range test {
		si := in.(*synthInput)
		m := cost.NewMeter()
		lm, _ := model.Run(in, m)
		alt := model.Landmarks[lm].Decide(0, si.Size())
		if alt == si.kind {
			matched++
		}
	}
	if matched < 70 {
		t.Fatalf("model matched algorithm on only %d/80 fresh inputs", matched)
	}
	_ = prog
}

func TestTwoLevelBeatsStaticOracle(t *testing.T) {
	prog, model := trainSynth(t)
	test := synthInputs(100, 123)
	d := BuildDataset(prog, test, model, true)
	idx := AllRows(d)
	so := StaticOracleIndex(prog, model.Train, AllRows(model.Train), 0.95)
	static := EvalStatic(prog, d, idx, so)
	two := EvalTwoLevel(model, d, idx)
	dyn := EvalDynamicOracle(prog, d, idx)
	if two.MeanTotal() >= static.MeanTotal() {
		t.Fatalf("two-level (%v) not faster than static oracle (%v)", two.MeanTotal(), static.MeanTotal())
	}
	if dyn.MeanExec > two.MeanExec+1e-9 {
		t.Fatalf("dynamic oracle (%v) slower than two-level (%v)?", dyn.MeanExec, two.MeanExec)
	}
	// On this synthetic problem the speedup should be substantial: the
	// static oracle runs mismatched on ~half the inputs (2x mean cost).
	speedup := static.MeanTotal() / two.MeanTotal()
	if speedup < 1.3 {
		t.Fatalf("two-level speedup only %.2fx", speedup)
	}
}

func TestProductionAvoidsExpensiveNoiseFeature(t *testing.T) {
	_, model := trainSynth(t)
	for _, f := range model.Production.Static {
		name := model.Program.Features().FeatureName(f)
		if name == "noise@2" {
			t.Fatalf("production classifier selected the expensive useless feature: %v", model.Report.SelectedFeatures)
		}
	}
}

func TestRelabelTimeOnly(t *testing.T) {
	prog := newSynthProgram()
	T := [][]float64{{3, 1, 2}, {1, 5, 0.5}}
	A := [][]float64{{1, 1, 1}, {1, 1, 1}}
	labels, best := Relabel(prog, T, A)
	if labels[0] != 1 || labels[1] != 2 {
		t.Fatalf("labels = %v", labels)
	}
	if best[0] != 1 || best[1] != 0.5 {
		t.Fatalf("bestTime = %v", best)
	}
}

// accProgram is a variable-accuracy program for Relabel/cost-matrix tests.
type accProgram struct{ synthProgram }

func (p *accProgram) HasAccuracy() bool          { return true }
func (p *accProgram) AccuracyThreshold() float64 { return 0.8 }

func TestRelabelWithAccuracy(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	// Input 0: config 0 fast but inaccurate; config 1 meets threshold.
	// Input 1: nothing meets threshold; pick max accuracy (config 0).
	T := [][]float64{{1, 2}, {1, 2}}
	A := [][]float64{{0.5, 0.9}, {0.7, 0.6}}
	labels, best := Relabel(prog, T, A)
	if labels[0] != 1 {
		t.Fatalf("input 0 label = %d, want 1 (accuracy-feasible)", labels[0])
	}
	if labels[1] != 0 {
		t.Fatalf("input 1 label = %d, want 0 (max accuracy)", labels[1])
	}
	if best[0] != 2 || best[1] != 1 {
		t.Fatalf("bestTime = %v", best)
	}
}

func TestCostMatrixProperties(t *testing.T) {
	prog := newSynthProgram()
	d := &Dataset{
		T:      [][]float64{{1, 2}, {1, 4}, {3, 1}},
		A:      [][]float64{{1, 1}, {1, 1}, {1, 1}},
		Labels: []int{0, 0, 1},
	}
	c := CostMatrix(prog, d, 0.5)
	// Diagonal must be zero (predicting the true best costs nothing).
	for i := range c {
		if c[i][i] != 0 {
			t.Fatalf("C[%d][%d] = %v, want 0", i, i, c[i][i])
		}
	}
	// C[0][1]: inputs 0 and 1 labelled 0; penalties (2-1)/1=1 and (4-1)/1=3
	// -> mean 2.
	if math.Abs(c[0][1]-2) > 1e-9 {
		t.Fatalf("C[0][1] = %v, want 2", c[0][1])
	}
	// C[1][0]: input 2 labelled 1; penalty (3-1)/1 = 2.
	if math.Abs(c[1][0]-2) > 1e-9 {
		t.Fatalf("C[1][0] = %v, want 2", c[1][0])
	}
}

func TestCostMatrixAccuracyPenalty(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	// Single label class 0; landmark 1 is slightly slower AND misses
	// accuracy on every input -> its cost must exceed the pure time
	// penalty.
	d := &Dataset{
		T:      [][]float64{{1, 1.1}, {1, 1.1}},
		A:      [][]float64{{0.9, 0.5}, {0.9, 0.5}},
		Labels: []int{0, 0},
	}
	noAcc := CostMatrix(&prog.synthProgram, d, 0.5) // time-only view
	withAcc := CostMatrix(prog, d, 0.5)
	if withAcc[0][1] <= noAcc[0][1] {
		t.Fatalf("accuracy penalty missing: with=%v, without=%v", withAcc[0][1], noAcc[0][1])
	}
}

func TestStaticOracleRespectsSatisfaction(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	// Landmark 0: fastest but only 50% satisfaction. Landmark 1: slower,
	// always satisfies. H2 = 0.95 must force landmark 1.
	d := &Dataset{
		T: [][]float64{{1, 2}, {1, 2}},
		A: [][]float64{{0.9, 0.9}, {0.5, 0.9}},
	}
	idx := []int{0, 1}
	if so := StaticOracleIndex(prog, d, idx, 0.95); so != 1 {
		t.Fatalf("static oracle picked %d, want 1", so)
	}
	// With an H2 of 0.4, the faster landmark qualifies.
	if so := StaticOracleIndex(prog, d, idx, 0.4); so != 0 {
		t.Fatalf("static oracle picked %d, want 0", so)
	}
}

func TestMaxAPrioriPredictsMode(t *testing.T) {
	c := NewMaxAPriori([]int{2, 2, 1, 2, 0}, 3)
	label, used := c.PredictRow([]float64{1, 2, 3})
	if label != 2 || used != nil {
		t.Fatalf("apriori = (%d, %v)", label, used)
	}
}

func TestDeterministicTraining(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(60, 5)
	opts := Options{K1: 4, Seed: 7, TunerPopulation: 8, TunerGenerations: 6}
	a := TrainModel(prog, inputs, opts)
	b := TrainModel(prog, inputs, opts)
	if a.Report.Production != b.Report.Production {
		t.Fatalf("nondeterministic production classifier: %q vs %q", a.Report.Production, b.Report.Production)
	}
	for k := range a.Landmarks {
		if a.Landmarks[k].String() != b.Landmarks[k].String() {
			t.Fatalf("landmark %d differs between identical runs", k)
		}
	}
}

func TestReportFields(t *testing.T) {
	_, model := trainSynth(t)
	r := model.Report
	if r.Benchmark != "synth" || r.NumInputs != 120 || r.K1 != 6 {
		t.Fatalf("report basics wrong: %+v", r)
	}
	if r.TunerEvaluations == 0 {
		t.Fatal("tuner evaluations not recorded")
	}
	if r.NumCandidates < 16 { // 1 apriori + 15 subsets (+ maybe incremental)
		t.Fatalf("only %d candidates", r.NumCandidates)
	}
	if r.Production == "" {
		t.Fatal("no production classifier name")
	}
}
