package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"inputtune/internal/autotuner"
	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/engine"
	"inputtune/internal/feature"
	"inputtune/internal/ml/kmeans"
	"inputtune/internal/rng"
	"inputtune/internal/stats"
)

// Options configures two-level training. Zero values select defaults that
// keep the scaled-down pipeline fast; raise K1 and the tuner budget toward
// the paper's scale (K1 = 100) with the cmd flags.
type Options struct {
	// K1 is the number of input clusters and landmark configurations
	// (default 16; the paper uses 100 and shows diminishing returns past
	// ~10-30 in Figure 8).
	K1 int
	// Seed makes the whole pipeline deterministic.
	Seed uint64
	// Lambda weighs the accuracy penalty in the cost matrix (default 0.5,
	// the paper's chosen value).
	Lambda float64
	// H2 is the satisfaction threshold: the fraction of inputs whose
	// accuracy must meet H1 (default 0.95).
	H2 float64
	// TunerPopulation and TunerGenerations set the per-landmark
	// evolutionary search budget (defaults 20 and 16).
	TunerPopulation  int
	TunerGenerations int
	// TunerBudget caps actual tuner evaluations per landmark; 0 selects
	// the meta-tuner's self-tuned default (3/5 of the flat GA's request).
	// The drift controller lowers this for cheap continuous retraining.
	// Ignored under FlatTuner.
	TunerBudget int
	// TunerMetaTrials sets the self-tuning meta-loop's portfolio size
	// (0 = default 3). Ignored under FlatTuner.
	TunerMetaTrials int
	// FlatTuner reverts to the single-run flat GA: no dependency-aware
	// dedup, no self-tuning meta-loop, no evaluation budget. Kept as the
	// A/B baseline the bench-smoke CI job compares against.
	FlatTuner bool
	// TuneSamples is the number of cluster members each landmark is tuned
	// against (default 5; 3 under FlatTuner — the legacy baseline keeps
	// its historical sampling so it byte-reproduces the BENCH_9
	// trajectory): the tuner minimises the geometric-mean time and must
	// meet the accuracy threshold on EVERY sample. This mirrors
	// PetaBricks' statistical accuracy guarantee ("meet the accuracy
	// target with a given level of confidence") and keeps landmarks from
	// sitting exactly on the accuracy boundary of a single input.
	TuneSamples int
	// MaxTreeDepth bounds the subset decision trees (default 12).
	MaxTreeDepth int
	// ValidationFraction of training inputs held out for production-
	// classifier selection (default 0.3).
	ValidationFraction float64
	// Parallel enables concurrent landmark tuning, measurement, and
	// classifier-zoo training, all on the shared engine worker pool.
	Parallel bool
	// DisableCache turns off the shared measurement cache — the escape
	// hatch for A/B runs. Program.Run is deterministic, so the trained
	// model is bit-identical with the cache on or off; only speed differs.
	DisableCache bool
	// CacheCapacity bounds the measurement cache (entries; default
	// engine.DefaultCacheCapacity).
	CacheCapacity int
	// RandomLandmarks replaces the K-means-medoid tuning inputs with
	// uniformly random training inputs — the inferior alternative the paper
	// quantifies in Section 3.1 (~41% worse at 5 configurations). Used by
	// the E7 ablation.
	RandomLandmarks bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// fringeWeight is the relative weight of non-medoid cluster samples in a
// landmark tuner's time objective (the medoid weighs 1). Low enough that
// landmarks specialise to their cluster core, high enough that a
// configuration pathological on the fringe still loses.
const fringeWeight = 0.25

func (o *Options) setDefaults() {
	if o.K1 <= 0 {
		o.K1 = 16
	}
	if o.Lambda == 0 {
		o.Lambda = 0.5
	}
	if o.H2 == 0 {
		o.H2 = 0.95
	}
	if o.TunerPopulation <= 0 {
		o.TunerPopulation = 20
	}
	if o.TunerGenerations <= 0 {
		o.TunerGenerations = 16
	}
	if o.MaxTreeDepth <= 0 {
		o.MaxTreeDepth = 6
	}
	if o.TuneSamples <= 0 {
		o.TuneSamples = 5
		if o.FlatTuner {
			o.TuneSamples = 3
		}
	}
	if o.ValidationFraction <= 0 || o.ValidationFraction >= 1 {
		o.ValidationFraction = 0.3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// PhaseTime is the wall-clock cost of one named training phase.
type PhaseTime struct {
	Name    string
	Seconds float64
}

// PhaseTimes is the ordered per-phase breakdown of a training run:
//
//   - "features" — feature extraction, z-score scaling and Level-1
//     clustering;
//   - "tune" — landmark autotuning;
//   - "measure" — the landmark × input measurement pass;
//   - "classifiers" — all of Level 2: relabeling, cost-matrix builds,
//     classifier-zoo training and production selection.
type PhaseTimes []PhaseTime

// Get returns the seconds recorded for name, or 0 if the phase is absent.
func (p PhaseTimes) Get(name string) float64 {
	for _, ph := range p {
		if ph.Name == name {
			return ph.Seconds
		}
	}
	return 0
}

// phaseClock accumulates PhaseTimes as training advances; each Mark closes
// the phase that began at the previous Mark (or at Start).
type phaseClock struct {
	phases PhaseTimes
	last   time.Time
}

func startPhaseClock() *phaseClock { return &phaseClock{last: time.Now()} }

func (c *phaseClock) Mark(name string) {
	now := time.Now()
	c.phases = append(c.phases, PhaseTime{Name: name, Seconds: now.Sub(c.last).Seconds()})
	c.last = now
}

// Report summarises a training run for EXPERIMENTS.md and the verbose CLI.
type Report struct {
	Benchmark        string
	NumInputs        int
	K1               int
	SpaceSize        string
	TunerEvaluations int
	// TunerCacheHits counts genome evaluations the tuners answered from
	// their in-run memo instead of running the program.
	TunerCacheHits int
	// DeadGeneCollapses counts structurally new genomes the tuners
	// collapsed onto an already-evaluated canonical representative via the
	// choice space's dependency graph — evaluations saved before they were
	// paid. Zero under FlatTuner or for spaces without dependencies.
	DeadGeneCollapses int
	// MetaTunerTrials sums the hyperparameter trials the self-tuning
	// meta-loop ran across landmarks (zero under FlatTuner).
	MetaTunerTrials int
	// Engine snapshots the shared measurement cache at the end of
	// training. Excluded from model serialisation so that SaveModel output
	// is byte-identical with the cache on or off.
	Engine engine.CacheStats `json:"-"`
	// Phases is the wall-clock breakdown of training. Excluded from model
	// serialisation (wall-clock is nondeterministic; SaveModel must stay
	// byte-identical per seed).
	Phases PhaseTimes `json:"-"`
	// ZooTrees is the number of distinct decision trees actually trained
	// for the subset-tree zoo; ZooDedupHits counts zoo members that shared
	// a tree with an identical (subset, cost matrix) job instead of
	// training their own. Excluded from model serialisation: they describe
	// how the zoo was trained, not what was learned, and the reference
	// trainer path legitimately reports different values for an otherwise
	// identical model.
	ZooTrees     int `json:"-"`
	ZooDedupHits int `json:"-"`
	// RelabelFraction is the share of inputs whose Level-2 label differs
	// from their Level-1 cluster — the paper reports 73.4% for Kmeans.
	RelabelFraction float64
	Production      string
	// SelectedFeatures names the features the production classifier may
	// extract.
	SelectedFeatures []string
	Scores           []Score
	NumCandidates    int
}

// Model is a trained two-level input-adaptive program, ready to deploy.
type Model struct {
	Program    Program
	Landmarks  []*choice.Config
	Production *Candidate
	// Level-1 artifacts, kept for the one-level baseline and diagnostics.
	Clusters *kmeans.Result
	Scaler   *stats.ZScorer
	Train    *Dataset
	// Summary is the persisted training-distribution fingerprint the drift
	// detector compares live traffic against (nil on artifacts saved
	// before the summary section existed).
	Summary *Summary
	Report  Report
}

// TrainModel runs the full two-level pipeline of Section 3 on the training
// inputs and returns the deployable model.
func TrainModel(prog Program, inputs []Input, opts Options) *Model {
	opts.setDefaults()
	if len(inputs) < 2 {
		panic("core: need at least 2 training inputs")
	}
	set := prog.Features()
	space := prog.Space()
	logf := opts.Logf
	clock := startPhaseClock()

	// ---- Level 1 ----
	logf("[%s] level 1: extracting %d features on %d inputs", prog.Name(), set.NumFeatures(), len(inputs))
	F, E := ExtractFeatures(prog, inputs, opts.Parallel)
	scaler := stats.FitZScore(F)
	Fn := scaler.TransformAll(F)

	k1 := opts.K1
	if k1 > len(inputs) {
		k1 = len(inputs)
	}
	logf("[%s] level 1: clustering into K1=%d groups", prog.Name(), k1)
	km := kmeans.Cluster(Fn, kmeans.Options{K: k1, Seed: opts.Seed})
	k1 = len(km.Centroids)
	clock.Mark("features")

	// Variable-accuracy programs get one extra "safety" landmark tuned
	// against samples spread over the whole training set rather than one
	// cluster. Per-cluster landmarks are optimised to the accuracy edge of
	// their own cluster; with only K1 of them (the paper uses 100) the set
	// can lack any configuration that is feasible almost everywhere, and
	// then no dispatcher — not even the static oracle — can meet the
	// satisfaction threshold. The safety landmark restores that corner of
	// the landscape.
	nLandmarks := k1
	if prog.HasAccuracy() {
		nLandmarks++
	}
	logf("[%s] level 1: autotuning %d landmarks (space %s)", prog.Name(), nLandmarks, space.SizeDescription())
	// The measurement cache is shared by the per-landmark tuners and the
	// landmark measurement pass below: any (config, input) pair is run at
	// most once per training session.
	var cache *engine.Cache
	if !opts.DisableCache {
		cache = engine.NewCache(opts.CacheCapacity)
	}
	measure := func(key string, cfg *choice.Config, si int) engine.Measurement {
		return cache.Measure(engine.Key{Config: key, Input: si}, func() engine.Measurement {
			return measureInput(prog, cfg, inputs[si])
		})
	}
	// Measurement-cache keys are canonical under the space's dependency
	// graph, so dead-gene variants of one behaviour share entries across
	// landmark tuners and the measurement pass. The full→canonical mapping
	// is memoized (engine.KeyMemo) to avoid re-canonicalizing per lookup.
	keyMemo := engine.NewKeyMemo()
	canonKey := func(cfg *choice.Config) string {
		full := cfg.Key()
		if opts.FlatTuner || !space.HasDependencies() {
			return full
		}
		return keyMemo.Canonical(full, func() string { return space.LiveKey(cfg) })
	}
	landmarks := make([]*choice.Config, nLandmarks)
	tunerEvals := 0
	tunerHits := 0
	tunerCollapses := 0
	metaTrials := 0
	evalsCh := make([]int, nLandmarks)
	hitsCh := make([]int, nLandmarks)
	collapsesCh := make([]int, nLandmarks)
	trialsCh := make([]int, nLandmarks)
	pickRand := rng.New(opts.Seed + 99)
	randPicks := make([][]int, k1)
	for c := range randPicks {
		for s := 0; s < opts.TuneSamples; s++ {
			randPicks[c] = append(randPicks[c], pickRand.Intn(len(inputs)))
		}
	}
	forEach(nLandmarks, opts.Parallel, func(c int) {
		var samples []int
		target := prog.AccuracyThreshold()
		if c == k1 {
			// Safety landmark: samples spread over the whole training set,
			// and an 8% margin on the accuracy target so the resulting
			// configuration is feasible well beyond the sampled inputs.
			// When the margin is unreachable the tuner's infeasible path
			// maximises accuracy instead — also exactly what a safety
			// configuration should do.
			want := 4 * opts.TuneSamples
			if want > len(inputs) {
				want = len(inputs)
			}
			for s := 0; s < want; s++ {
				samples = append(samples, s*(len(inputs)-1)/maxInt(want-1, 1))
			}
			target += 0.08 * math.Abs(target)
		} else {
			samples = clusterSamples(km, Fn, c, opts.TuneSamples)
			if opts.RandomLandmarks {
				samples = randPicks[c]
			}
		}
		if len(samples) == 0 {
			samples = []int{int(opts.Seed+uint64(c)) % len(inputs)}
		}
		// Per-sample weights for the time objective. Cluster landmarks
		// under the dependency-aware tuner down-weight the fringe samples
		// relative to the medoid (sample 0 — clusterSamples sorts
		// medoid-first): the landmark should be the specialist for its
		// cluster core, not a generalist across the fringe, or the landmark
		// set collapses toward one configuration and input adaptation has
		// nothing to choose between. The safety landmark (c == k1) and the
		// flat A/B arm keep equal weights; the accuracy guard stays the
		// minimum over ALL samples either way.
		wts := make([]float64, len(samples))
		wsum := 0.0
		for i := range wts {
			wts[i] = 1
			if i > 0 && c != k1 && !opts.FlatTuner {
				wts[i] = fringeWeight
			}
			wsum += wts[i]
		}
		topts := autotuner.Options{
			Space: space,
			// Tuning objective over the cluster sample set: weighted
			// geometric-mean time (scale-free across sample sizes) under
			// the WORST sample accuracy, so feasible landmarks carry an
			// accuracy margin across their cluster, not just at its
			// centroid.
			Eval: func(cfg *choice.Config) autotuner.Result {
				key := canonKey(cfg)
				sumLog := 0.0
				minAcc := math.Inf(1)
				for i, si := range samples {
					res := measure(key, cfg, si)
					sumLog += wts[i] * math.Log(res.Time+1)
					if res.Accuracy < minAcc {
						minAcc = res.Accuracy
					}
				}
				return autotuner.Result{
					Time:     math.Exp(sumLog / wsum),
					Accuracy: minAcc,
				}
			},
			RequireAccuracy: prog.HasAccuracy(),
			AccuracyTarget:  target,
			Population:      opts.TunerPopulation,
			Generations:     opts.TunerGenerations,
			Seed:            opts.Seed*1000003 + uint64(c),
			Parallel:        opts.Parallel,
			Flat:            opts.FlatTuner,
		}
		if opts.FlatTuner {
			cfg, st := autotuner.Tune(topts)
			landmarks[c] = cfg
			evalsCh[c] = st.Evaluations
			hitsCh[c] = st.CacheHits
		} else {
			cfg, mst := autotuner.MetaTune(autotuner.MetaOptions{
				Options: topts,
				Trials:  opts.TunerMetaTrials,
				Budget:  opts.TunerBudget,
			})
			landmarks[c] = cfg
			evalsCh[c] = mst.Evaluations
			hitsCh[c] = mst.CacheHits
			collapsesCh[c] = mst.DeadGeneCollapses
			trialsCh[c] = mst.Trials
		}
	})
	for c := range evalsCh {
		tunerEvals += evalsCh[c]
		tunerHits += hitsCh[c]
		tunerCollapses += collapsesCh[c]
		metaTrials += trialsCh[c]
	}
	clock.Mark("tune")

	logf("[%s] level 1: measuring %d landmarks x %d inputs", prog.Name(), nLandmarks, len(inputs))
	T, A := MeasureLandmarksCached(prog, inputs, landmarks, cache, opts.Parallel)
	clock.Mark("measure")

	if cs := cache.Stats(); cs.Hits+cs.Misses > 0 {
		logf("[%s] engine: measurement cache %.1f%% hit rate (%d hits, %d misses, %d evictions)",
			prog.Name(), 100*cs.HitRate(), cs.Hits, cs.Misses, cs.Evictions)
	}

	// ---- Level 2 ----
	labels, bestTime := Relabel(prog, T, A)
	d := &Dataset{F: F, E: E, T: T, A: A, Labels: labels, BestTime: bestTime}
	relabeled := 0
	for i := range labels {
		if labels[i] != km.Labels[i] {
			relabeled++
		}
	}
	relabelFrac := float64(relabeled) / float64(len(labels))
	logf("[%s] level 2: %.1f%% of inputs changed cluster under relabelling", prog.Name(), 100*relabelFrac)

	// The paper selects λ by trying values and keeping the best performer;
	// we build the subset-tree zoo at three λ settings (λ, 4λ, 16λ) and let
	// the production-selection objective choose among the union. Larger λ
	// yields more conservative trees, which matters when accuracy
	// feasibility is brittle.
	lambdas := []float64{opts.Lambda, 4 * opts.Lambda, 16 * opts.Lambda}
	if !prog.HasAccuracy() {
		lambdas = lambdas[:1] // λ only affects the accuracy penalty
	}
	cmatrices := make([][][]float64, len(lambdas))
	forEach(len(lambdas), opts.Parallel, func(li int) {
		cmatrices[li] = CostMatrix(prog, d, lambdas[li])
	})

	// Split into classifier-train and validation rows.
	r := rng.New(opts.Seed + 17)
	perm := r.Perm(len(inputs))
	nValid := int(opts.ValidationFraction * float64(len(inputs)))
	if nValid < 1 {
		nValid = 1
	}
	validIdx := perm[:nValid]
	trainIdx := perm[nValid:]
	trX := make([][]float64, len(trainIdx))
	trY := make([]int, len(trainIdx))
	for i, t := range trainIdx {
		trX[i] = F[t]
		trY[i] = labels[t]
	}

	// Candidate zoo: max-a-priori, the training static oracle as a trivial
	// classifier (so production can never lose to the best single
	// configuration), plus one tree per non-empty feature subset
	// ((z+1)^u - 1 trees; the all-features tree is the last subset).
	u, z := set.NumProperties(), set.LevelsPerProperty()
	logf("[%s] level 2: training classifier zoo over %d feature subsets", prog.Name(), pow(z+1, u)-1)
	soIdx := StaticOracleIndex(prog, d, perm, opts.H2)
	cands := []*Candidate{
		NewMaxAPriori(trY, nLandmarks),
		NewFixed(fmt.Sprintf("static-oracle[%d]", soIdx), soIdx),
	}
	// The (z+1)^u - 1 subset trees × |λ| settings all train on one shared
	// presorted-feature backbone (BuildTreeZoo): rows are sorted per
	// feature once, duplicate (subset, cost matrix) jobs share a tree, and
	// the distinct jobs run on the worker pool, each writing its slot so
	// the zoo order (and therefore production selection) is deterministic.
	var specs []TreeSpec
	for li := range lambdas {
		suffix := ""
		if li > 0 {
			suffix = fmt.Sprintf("@λx%d", pow(4, li))
		}
		for _, ss := range feature.EnumerateSubsets(u, z) {
			if ss.Empty() {
				continue
			}
			specs = append(specs, TreeSpec{
				Name:       fmt.Sprintf("tree%s%s", set.Describe(ss), suffix),
				Subset:     ss.Indices(z),
				CostMatrix: cmatrices[li],
			})
		}
	}
	trees, zooTrees, zooDedup := BuildTreeZoo(trX, trY, specs, nLandmarks, opts.MaxTreeDepth, opts.Parallel)
	if zooDedup > 0 {
		logf("[%s] level 2: zoo deduplicated %d of %d tree jobs", prog.Name(), zooDedup, len(specs))
	}
	cands = append(cands, trees...)

	// Find the best tree so far to seed the incremental classifier's
	// feature pool (the paper applies it "after the previous method has
	// found the best subset").
	bestTreeIdx, _ := SelectProduction(prog, d, validIdx, cands, opts.H2)
	if pool := cands[bestTreeIdx].Static; len(pool) > 0 {
		meanCost := make([]float64, set.NumFeatures())
		for _, i := range trainIdx {
			for f, c := range E[i] {
				meanCost[f] += c
			}
		}
		for f := range meanCost {
			meanCost[f] /= float64(len(trainIdx))
		}
		inc := NewIncremental(trX, trY, nLandmarks, pool, meanCost, func(c *Candidate) float64 {
			s := ScoreCandidate(prog, d, trainIdx, c, opts.H2)
			if !s.Valid {
				return s.MeanCost * 1e6
			}
			return s.MeanCost
		})
		cands = append(cands, inc)
	}

	best, scores := SelectProduction(prog, d, validIdx, cands, opts.H2)
	prod := cands[best]
	clock.Mark("classifiers")
	logf("[%s] level 2: production classifier = %s (cost %.3g, satisfaction %.1f%%)",
		prog.Name(), prod.Name, scores[best].MeanCost, 100*scores[best].Satisfaction)

	var selected []string
	for _, f := range prod.Static {
		selected = append(selected, set.FeatureName(f))
	}

	// The drift summary's assignment weights use the production
	// classifier's observable feature subset (nil = all features when the
	// production extracts none), so the serving-side detector compares
	// like with like. Pure arithmetic over already-computed rows: no RNG,
	// so adding the summary leaves every trained artifact's landmarks,
	// classifier and report bit-identical.
	var summaryDims []int
	if len(prod.Static) > 0 {
		summaryDims = prod.Static
	}

	return &Model{
		Program:    prog,
		Landmarks:  landmarks,
		Production: prod,
		Clusters:   km,
		Scaler:     scaler,
		Train:      d,
		Summary:    SummarizeTraining(km.Centroids, Fn, summaryDims),
		Report: Report{
			Benchmark:         prog.Name(),
			NumInputs:         len(inputs),
			K1:                k1,
			SpaceSize:         space.SizeDescription(),
			TunerEvaluations:  tunerEvals,
			TunerCacheHits:    tunerHits,
			DeadGeneCollapses: tunerCollapses,
			MetaTunerTrials:   metaTrials,
			Engine:            cache.Stats(),
			Phases:            clock.phases,
			ZooTrees:          zooTrees,
			ZooDedupHits:      zooDedup,
			RelabelFraction:   relabelFrac,
			Production:        prod.Name,
			SelectedFeatures:  selected,
			Scores:            scores,
			NumCandidates:     len(cands),
		},
	}
}

// Retrain runs the full two-level pipeline again on a fresh input set —
// the entry point the online drift loop uses with its retained reservoir.
// It is deliberately nothing more than TrainModel on the same Program:
// given identical inputs, options and seed, the retrained artifact is
// byte-identical to an offline TrainModel+SaveModel run (the differential
// the drift tests enforce), so online retraining never forks the training
// semantics.
func (m *Model) Retrain(inputs []Input, opts Options) *Model {
	return TrainModel(m.Program, inputs, opts)
}

// Classify selects the landmark for a fresh input, charging feature-
// extraction cost to meter (which may be nil).
func (m *Model) Classify(in Input, meter *cost.Meter) int {
	return m.Production.ClassifyInput(m.Program.Features(), in, meter)
}

// Run deploys the model on a fresh input: classify (charging extraction
// cost), then execute the selected landmark configuration. It returns the
// landmark used and the achieved accuracy.
func (m *Model) Run(in Input, meter *cost.Meter) (landmark int, accuracy float64) {
	landmark = m.Classify(in, meter)
	accuracy = m.Program.Run(m.Landmarks[landmark], in, meter)
	return landmark, accuracy
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// clusterSamples returns up to want member indices of cluster c spread
// from the centroid outward: the medoid first, then members at increasing
// distance, so the tuner sees both the cluster core and its fringe.
func clusterSamples(km *kmeans.Result, points [][]float64, c, want int) []int {
	type member struct {
		idx int
		d   float64
	}
	var members []member
	for i, l := range km.Labels {
		if l == c {
			members = append(members, member{i, stats.SquaredEuclidean(points[i], km.Centroids[c])})
		}
	}
	if len(members) == 0 {
		return nil
	}
	sort.Slice(members, func(a, b int) bool { return members[a].d < members[b].d })
	if want > len(members) {
		want = len(members)
	}
	out := make([]int, 0, want)
	if want == 1 {
		return []int{members[0].idx}
	}
	// Even spread over the sorted-by-distance list, always including the
	// medoid (first) and the fringe (last).
	for s := 0; s < want; s++ {
		pos := s * (len(members) - 1) / (want - 1)
		out = append(out, members[pos].idx)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
