package core

import (
	"bytes"
	"testing"
)

// withReferenceZoo runs fn with BuildTreeZoo routed through the per-tree
// ReferenceTrain path — the pre-backbone trainer kept for differential
// testing.
func withReferenceZoo(fn func()) {
	zooUseReference = true
	defer func() { zooUseReference = false }()
	fn()
}

// TestZooPresortedMatchesReference is the backbone's end-to-end guarantee
// at the model level: for a fixed seed, training with the shared
// presorted-feature zoo (dedup included) must produce the byte-identical
// serialised model as the original per-tree re-sorting trainer.
func TestZooPresortedMatchesReference(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(100, 11)
	opts := Options{K1: 5, Seed: 3, TunerPopulation: 10, TunerGenerations: 8, Parallel: true}

	presorted := TrainModel(prog, inputs, opts)
	var reference *Model
	withReferenceZoo(func() { reference = TrainModel(prog, inputs, opts) })

	a, b := saveBytes(t, presorted), saveBytes(t, reference)
	if !bytes.Equal(a, b) {
		t.Fatalf("presorted zoo changed the trained model:\npresorted: %s\nreference: %s", a, b)
	}
	if presorted.Report.ZooTrees == 0 {
		t.Fatal("presorted run trained no zoo trees")
	}
	if reference.Report.ZooDedupHits != 0 {
		t.Fatalf("reference path reported dedup hits: %d", reference.Report.ZooDedupHits)
	}
	// Every zoo member is accounted for: distinct jobs plus dedup hits on
	// one side, one tree per member on the other.
	if got, want := presorted.Report.ZooTrees+presorted.Report.ZooDedupHits, reference.Report.ZooTrees; got != want {
		t.Fatalf("zoo member accounting: %d distinct + dedup, reference trained %d", got, want)
	}
}

// TestZooPresortedMatchesReferenceAccuracy repeats the parity check on a
// variable-accuracy program, where the zoo trains every subset at three λ
// settings — the case with non-trivial cost matrices and the duplicate
// (subset, cost matrix) jobs the fingerprint dedup exists for.
func TestZooPresortedMatchesReferenceAccuracy(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	inputs := synthInputs(90, 7)
	opts := Options{K1: 4, Seed: 13, TunerPopulation: 8, TunerGenerations: 6, Parallel: true}

	presorted := TrainModel(prog, inputs, opts)
	var reference *Model
	withReferenceZoo(func() { reference = TrainModel(prog, inputs, opts) })

	if !bytes.Equal(saveBytes(t, presorted), saveBytes(t, reference)) {
		t.Fatal("presorted zoo diverged from reference on a variable-accuracy program")
	}
	if got, want := presorted.Report.ZooTrees+presorted.Report.ZooDedupHits, reference.Report.ZooTrees; got != want {
		t.Fatalf("zoo member accounting: %d != %d", got, want)
	}
}

// TestBuildTreeZooDedup checks the fingerprint dedup directly: identical
// (subset, cost matrix) specs share one tree, distinct specs do not.
func TestBuildTreeZooDedup(t *testing.T) {
	X := [][]float64{{1, 4}, {2, 3}, {3, 2}, {4, 1}, {5, 9}, {6, 8}, {7, 7}, {8, 6}}
	y := []int{0, 0, 0, 0, 1, 1, 1, 1}
	cmA := [][]float64{{0, 1}, {1, 0}}
	cmB := [][]float64{{0, 2}, {1, 0}}
	specs := []TreeSpec{
		{Name: "a", Subset: []int{0}, CostMatrix: cmA},
		{Name: "b", Subset: []int{0}, CostMatrix: append([][]float64(nil), cmA...)}, // same contents, distinct backing
		{Name: "c", Subset: []int{0}, CostMatrix: cmB},
		{Name: "d", Subset: []int{1}, CostMatrix: cmA},
	}
	cands, unique, dedup := BuildTreeZoo(X, y, specs, 2, 6, false)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates", len(cands))
	}
	if unique != 3 || dedup != 1 {
		t.Fatalf("unique=%d dedup=%d, want 3 and 1", unique, dedup)
	}
	if cands[0].tree != cands[1].tree {
		t.Fatal("identical jobs did not share a tree")
	}
	if cands[0].tree == cands[2].tree || cands[0].tree == cands[3].tree {
		t.Fatal("distinct jobs shared a tree")
	}
	if cands[0].Name != "a" || cands[1].Name != "b" {
		t.Fatal("candidate names must stay per-spec even when trees are shared")
	}
}

// TestZooFingerprintInjective guards the encoding against collisions
// between the subset and matrix sections.
func TestZooFingerprintInjective(t *testing.T) {
	cm := [][]float64{{0, 1}, {1, 0}}
	pairs := [][2]string{
		{zooFingerprint([]int{0}, cm), zooFingerprint([]int{1}, cm)},
		{zooFingerprint([]int{0}, cm), zooFingerprint([]int{0, 1}, cm)},
		{zooFingerprint([]int{0}, cm), zooFingerprint([]int{0}, [][]float64{{0, 1}, {2, 0}})},
		{zooFingerprint(nil, cm), zooFingerprint([]int{0}, nil)},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("fingerprint collision in pair %d", i)
		}
	}
	if zooFingerprint([]int{2, 5}, cm) != zooFingerprint([]int{2, 5}, [][]float64{{0, 1}, {1, 0}}) {
		t.Fatal("equal jobs produced different fingerprints")
	}
}
