package core

import (
	"inputtune/internal/engine"
	"inputtune/internal/stats"
)

// This file implements the paper's three comparison baselines (Section 4):
// the static oracle, the one-level method, and the dynamic oracle.

// StaticOracleIndex returns the single landmark a static (input-oblivious)
// autotuner would deploy: the one with the lowest mean relative execution
// time (normalised by each input's best time δ_i, consistent with the
// Score objective) over the given rows among landmarks meeting the
// satisfaction threshold h2; if none qualifies, the landmark with the
// highest satisfaction rate.
func StaticOracleIndex(prog Program, d *Dataset, idx []int, h2 float64) int {
	k1 := d.NumLandmarks()
	h1 := prog.AccuracyThreshold()
	hasAcc := prog.HasAccuracy()
	meanTime := make([]float64, k1)
	sat := make([]float64, k1)
	for k := 0; k < k1; k++ {
		for _, i := range idx {
			delta := 1.0
			if len(d.BestTime) > 0 && d.BestTime[i] > 0 {
				delta = d.BestTime[i]
			}
			meanTime[k] += d.T[i][k] / delta
			if !hasAcc || d.A[i][k] >= h1 {
				sat[k]++
			}
		}
		meanTime[k] /= float64(len(idx))
		sat[k] /= float64(len(idx))
	}
	best := -1
	threshold := h2 + SatisfactionBuffer(h2, len(idx))
	for k := 0; k < k1; k++ {
		if hasAcc && sat[k] < threshold {
			continue
		}
		if best == -1 || meanTime[k] < meanTime[best] {
			best = k
		}
	}
	if best == -1 {
		best = stats.ArgMax(sat)
	}
	return best
}

// OneLevel is the traditional one-level learning baseline: inputs are
// dispatched to the landmark of their nearest Level-1 cluster centroid.
// It is oblivious to the mapping disparity between feature space and
// performance space, oblivious to accuracy during dispatch, and — as the
// paper stresses — must extract every feature at every sampling level to
// compute the centroid distance.
type OneLevel struct {
	model *Model
}

// NewOneLevel derives the one-level baseline from a trained model (sharing
// its Level-1 clusters and landmarks, exactly as the paper's comparison
// does).
func NewOneLevel(m *Model) *OneLevel { return &OneLevel{model: m} }

// ClassifyRow returns the landmark for a raw feature row (all features
// extracted) and the full extraction cost the dispatch incurs on that row.
func (o *OneLevel) ClassifyRow(rawF, extractionCosts []float64) (landmark int, featCost float64) {
	norm := o.model.Scaler.Transform(rawF)
	landmark = o.model.Clusters.Nearest(norm)
	for _, c := range extractionCosts {
		featCost += c
	}
	return landmark, featCost
}

// EvalResult aggregates one dispatch method's behaviour over a row set.
type EvalResult struct {
	// MeanExec is the mean execution time of the chosen landmarks.
	MeanExec float64
	// MeanFeat is the mean feature-extraction overhead.
	MeanFeat float64
	// Satisfaction is the fraction of rows meeting the accuracy threshold.
	Satisfaction float64
	// PerInputExec holds the per-row execution times (for Figure 6).
	PerInputExec []float64
	// PerInputTotal holds execution + feature time per row.
	PerInputTotal []float64
}

// MeanTotal is MeanExec + MeanFeat.
func (e *EvalResult) MeanTotal() float64 { return e.MeanExec + e.MeanFeat }

// evalDispatch scores an arbitrary dispatch function over rows idx of d.
func evalDispatch(prog Program, d *Dataset, idx []int, dispatch func(i int) (landmark int, featCost float64)) *EvalResult {
	res := &EvalResult{
		PerInputExec:  make([]float64, len(idx)),
		PerInputTotal: make([]float64, len(idx)),
	}
	h1 := prog.AccuracyThreshold()
	hasAcc := prog.HasAccuracy()
	satisfied := 0.0
	for j, i := range idx {
		k, featCost := dispatch(i)
		exec := d.T[i][k]
		res.MeanExec += exec
		res.MeanFeat += featCost
		res.PerInputExec[j] = exec
		res.PerInputTotal[j] = exec + featCost
		if !hasAcc || d.A[i][k] >= h1 {
			satisfied++
		}
	}
	n := float64(len(idx))
	res.MeanExec /= n
	res.MeanFeat /= n
	res.Satisfaction = satisfied / n
	return res
}

// EvalStatic scores the fixed landmark so over rows idx.
func EvalStatic(prog Program, d *Dataset, idx []int, so int) *EvalResult {
	return evalDispatch(prog, d, idx, func(i int) (int, float64) { return so, 0 })
}

// EvalDynamicOracle scores the per-input best landmark (zero feature cost).
func EvalDynamicOracle(prog Program, d *Dataset, idx []int) *EvalResult {
	return evalDispatch(prog, d, idx, func(i int) (int, float64) { return d.Labels[i], 0 })
}

// EvalTwoLevel scores the trained production classifier over rows idx.
func EvalTwoLevel(m *Model, d *Dataset, idx []int) *EvalResult {
	return evalDispatch(m.Program, d, idx, func(i int) (int, float64) {
		label, used := m.Production.PredictRow(d.F[i])
		featCost := 0.0
		for _, f := range used {
			featCost += d.E[i][f]
		}
		return label, featCost
	})
}

// EvalOneLevel scores the one-level baseline over rows idx.
func EvalOneLevel(o *OneLevel, d *Dataset, idx []int) *EvalResult {
	return evalDispatch(o.model.Program, d, idx, func(i int) (int, float64) {
		return o.ClassifyRow(d.F[i], d.E[i])
	})
}

// BuildDataset assembles a Dataset for fresh (test) inputs against an
// existing landmark set: extract features, measure every landmark, relabel.
// Measurement runs behind a fresh cache scoped to this input set, so
// structurally identical landmarks (distinct clusters whose tuners
// converged to the same configuration) are measured once, not once each.
func BuildDataset(prog Program, inputs []Input, m *Model, parallel bool) *Dataset {
	return BuildDatasetCached(prog, inputs, m, engine.NewCache(0), parallel)
}

// BuildDatasetCached is BuildDataset with an explicit measurement cache;
// nil disables memoization (the same escape hatch as
// Options.DisableCache). Results are identical either way.
func BuildDatasetCached(prog Program, inputs []Input, m *Model, cache *engine.Cache, parallel bool) *Dataset {
	F, E := ExtractFeatures(prog, inputs, parallel)
	T, A := MeasureLandmarksCached(prog, inputs, m.Landmarks, cache, parallel)
	labels, bestTime := Relabel(prog, T, A)
	return &Dataset{F: F, E: E, T: T, A: A, Labels: labels, BestTime: bestTime}
}

// AllRows returns [0, n) for convenience when evaluating a whole dataset.
func AllRows(d *Dataset) []int {
	idx := make([]int, d.NumInputs())
	for i := range idx {
		idx[i] = i
	}
	return idx
}
