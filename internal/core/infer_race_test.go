package core_test

import (
	"sync"
	"testing"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
)

// trainInferModel trains one tiny model per program for the concurrency
// hammer; scale is irrelevant here, only the inference path is under test.
func trainInferModel(t *testing.T, prog core.Program, inputs []core.Input) *core.Model {
	t.Helper()
	return core.TrainModel(prog, inputs, core.Options{
		K1: 4, Seed: 11, TunerPopulation: 6, TunerGenerations: 4, Parallel: true,
	})
}

// TestInferConcurrent hammers one shared *Model from many goroutines, all
// classifying the SAME input objects, and checks every decision matches the
// serial answer. Run under -race (CI does) this is the enforcement of the
// Model-is-safe-for-concurrent-readers contract: a shared meter, lazily
// initialised classifier state, or a mutating feature extractor would all
// trip the detector here.
func TestInferConcurrent(t *testing.T) {
	cases := []struct {
		name   string
		prog   core.Program
		inputs []core.Input
	}{
		{"sort", sortbench.New(), sortCaseInputs(48, 3)},
		{"binpacking", binpack.New(), packCaseInputs(48, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := trainInferModel(t, tc.prog, tc.inputs)
			set := tc.prog.Features()

			// Serial ground truth, one label per input.
			want := make([]int, len(tc.inputs))
			wantUnits := make([]float64, len(tc.inputs))
			for i, in := range tc.inputs {
				d := m.Infer(in)
				want[i] = d.Landmark
				wantUnits[i] = d.FeatureUnits
			}

			const goroutines = 16
			const rounds = 8
			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for i, in := range tc.inputs {
							// Alternate the two public entry points so both
							// are exercised concurrently.
							var label int
							var units float64
							if (g+r)%2 == 0 {
								d := m.Infer(in)
								label, units = d.Landmark, d.FeatureUnits
							} else {
								label = m.Production.ClassifyInput(set, in, nil)
								units = wantUnits[i]
							}
							if label != want[i] {
								errs <- tc.name + ": concurrent label diverged from serial"
								return
							}
							if units != wantUnits[i] {
								errs <- tc.name + ": concurrent feature units diverged from serial"
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			if msg, bad := <-errs; bad {
				t.Fatal(msg)
			}
		})
	}
}

func sortCaseInputs(n int, seed uint64) []core.Input {
	lists := sortbench.GenerateMix(sortbench.MixOptions{Count: n, Seed: seed, MaxSize: 512})
	out := make([]core.Input, len(lists))
	for i, l := range lists {
		out[i] = l
	}
	return out
}

func packCaseInputs(n int, seed uint64) []core.Input {
	items := binpack.GenerateMix(binpack.MixOptions{Count: n, Seed: seed})
	out := make([]core.Input, len(items))
	for i, it := range items {
		out[i] = it
	}
	return out
}
