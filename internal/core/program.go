package core

import (
	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
)

// Input is the opaque program input; see feature.Input.
type Input = feature.Input

// Program is what a benchmark exposes to the learning framework — the Go
// analogue of a PetaBricks program with either…or choices, input_feature
// extractors and an accuracy metric.
type Program interface {
	// Name identifies the benchmark in reports.
	Name() string
	// Space returns the configuration search space. The returned value must
	// be stable across calls.
	Space() *choice.Space
	// Features returns the input_feature battery. Must be stable across
	// calls.
	Features() *feature.Set
	// Run executes the program under cfg on in, charging all execution work
	// to meter, and returns the achieved accuracy. Time-only programs
	// return 1. Run must be deterministic in (cfg, in).
	Run(cfg *choice.Config, in Input, meter *cost.Meter) float64
	// HasAccuracy reports whether the program trades accuracy for speed.
	HasAccuracy() bool
	// AccuracyThreshold is H1: the minimum accuracy for an output to count
	// as correct. Ignored when HasAccuracy is false.
	AccuracyThreshold() float64
}

// Measure runs prog once and returns (virtual time, accuracy).
func Measure(prog Program, cfg *choice.Config, in Input) (float64, float64) {
	m := cost.NewMeter()
	acc := prog.Run(cfg, in, m)
	return m.Elapsed(), acc
}
