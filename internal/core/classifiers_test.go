package core

import (
	"strings"
	"testing"

	"inputtune/internal/cost"
	"inputtune/internal/feature"
)

func TestKindString(t *testing.T) {
	if MaxAPriori.String() != "max-a-priori" || SubsetTree.String() != "subset-tree" ||
		Incremental.String() != "incremental" {
		t.Fatal("kind names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "kind(") {
		t.Fatal("unknown kind string")
	}
}

func TestNewFixedAlwaysPredicts(t *testing.T) {
	c := NewFixed("static-oracle[3]", 3)
	for _, row := range [][]float64{{0}, {1e9}, {-5}} {
		label, used := c.PredictRow(row)
		if label != 3 || used != nil {
			t.Fatalf("fixed classifier = (%d, %v)", label, used)
		}
	}
}

func TestSubsetTreePredictsAndNarrowsFeatures(t *testing.T) {
	// Feature 0 decides the label; feature 1 is constant. The tree is
	// offered both but must only retain feature 0.
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		v := float64(i % 2)
		X = append(X, []float64{v * 10, 7})
		y = append(y, i%2)
	}
	c := NewSubsetTree("t", X, y, []int{0, 1}, 2, nil, 6)
	if len(c.Static) != 1 || c.Static[0] != 0 {
		t.Fatalf("Static = %v, want [0]", c.Static)
	}
	if label, _ := c.PredictRow([]float64{10, 7}); label != 1 {
		t.Fatalf("predicted %d", label)
	}
}

// fakeInput lets us verify lazy extraction in ClassifyInput.
type fakeInput struct{ vals []float64 }

func (f *fakeInput) Size() int { return len(f.vals) }

func fakeSet(n int) *feature.Set {
	var ex []feature.Extractor
	for p := 0; p < n; p++ {
		p := p
		mk := func(chargeN int) feature.LevelFunc {
			return func(in feature.Input, m *cost.Meter) float64 {
				m.Charge(cost.Scan, chargeN)
				return in.(*fakeInput).vals[p]
			}
		}
		ex = append(ex, feature.Extractor{
			Name:   string(rune('a' + p)),
			Levels: []feature.LevelFunc{mk(1), mk(10), mk(100)},
		})
	}
	return feature.MustNewSet(ex...)
}

func TestClassifyInputChargesOnlyUsedFeatures(t *testing.T) {
	set := fakeSet(2)
	// Build a tree over flat feature index 0 (property a, level 0).
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		row := make([]float64, set.NumFeatures())
		row[0] = float64(i % 2)
		X = append(X, row)
		y = append(y, i%2)
	}
	c := NewSubsetTree("t", X, y, []int{0}, 2, nil, 4)
	m := cost.NewMeter()
	label := c.ClassifyInput(set, &fakeInput{vals: []float64{1, 99}}, m)
	if label != 1 {
		t.Fatalf("label = %d", label)
	}
	// Only feature 0 (level 0, cost 1 scan) may be charged.
	if m.Count(cost.Scan) != 1 {
		t.Fatalf("charged %d scans, want 1", m.Count(cost.Scan))
	}
	// Max-a-priori charges nothing.
	m2 := cost.NewMeter()
	NewFixed("fixed", 0).ClassifyInput(set, &fakeInput{vals: []float64{0, 0}}, m2)
	if m2.Elapsed() != 0 {
		t.Fatal("fixed classifier extracted features")
	}
}

func TestScoreCandidateNormalisesByDelta(t *testing.T) {
	prog := newSynthProgram()
	d := &Dataset{
		F:        [][]float64{{0}, {0}},
		E:        [][]float64{{5}, {50}},
		T:        [][]float64{{10, 20}, {100, 200}},
		A:        [][]float64{{1, 1}, {1, 1}},
		Labels:   []int{0, 0},
		BestTime: []float64{10, 100},
	}
	c := NewFixed("f", 0)
	s := ScoreCandidate(prog, d, []int{0, 1}, c, 0.95)
	// Both rows: exec/δ = 1; no features extracted.
	if s.MeanExec != 1 || s.MeanFeat != 0 || s.MeanCost != 1 {
		t.Fatalf("score = %+v", s)
	}
	// The slower landmark costs 2 relative on both rows.
	s2 := ScoreCandidate(prog, d, []int{0, 1}, NewFixed("g", 1), 0.95)
	if s2.MeanExec != 2 {
		t.Fatalf("relative exec = %v, want 2", s2.MeanExec)
	}
}

func TestSelectProductionRejectsOnAllRows(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	// Landmark 0: fast but infeasible on rows 2..9 (outside validation).
	// Landmark 1: always feasible, slower.
	n := 10
	d := &Dataset{BestTime: make([]float64, n)}
	for i := 0; i < n; i++ {
		d.F = append(d.F, []float64{0})
		d.E = append(d.E, []float64{0})
		d.T = append(d.T, []float64{1, 2})
		acc0 := 0.9
		if i >= 2 {
			acc0 = 0.1 // below the 0.8 threshold
		}
		d.A = append(d.A, []float64{acc0, 0.9})
		d.Labels = append(d.Labels, 1)
		d.BestTime[i] = 2
	}
	fast := NewFixed("fast", 0)
	safe := NewFixed("safe", 1)
	// Validation rows are exactly the two where `fast` looks feasible.
	best, scores := SelectProduction(prog, d, []int{0, 1}, []*Candidate{fast, safe}, 0.95)
	if scores[0].Valid {
		t.Fatalf("fast candidate should be invalidated by all-rows check: %+v", scores[0])
	}
	if cands := []*Candidate{fast, safe}; cands[best] != safe {
		t.Fatalf("selected %q, want safe", cands[best].Name)
	}
}

func TestSelectProductionFallbackMaxSatisfaction(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	d := &Dataset{
		F:        [][]float64{{0}, {0}},
		E:        [][]float64{{0}, {0}},
		T:        [][]float64{{1, 2}, {1, 2}},
		A:        [][]float64{{0.1, 0.9}, {0.1, 0.1}},
		Labels:   []int{1, 0},
		BestTime: []float64{2, 1},
	}
	// Neither candidate reaches 95%; the one satisfying half the rows wins
	// over the one satisfying none.
	best, _ := SelectProduction(prog, d, []int{0, 1},
		[]*Candidate{NewFixed("never", 0), NewFixed("half", 1)}, 0.95)
	if best != 1 {
		t.Fatalf("fallback picked %d, want 1", best)
	}
}

func TestRelabelCoalescesNearTies(t *testing.T) {
	prog := newSynthProgram()
	// Three inputs; landmark 1 is within 10% of best everywhere, landmarks
	// 0 and 2 each win one input by a hair. Coalescing should label all
	// inputs with the robust landmark 1.
	T := [][]float64{
		{100, 101, 200},
		{200, 101, 100},
		{105, 100, 200},
	}
	A := [][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	labels, best := Relabel(prog, T, A)
	for i, l := range labels {
		if l != 1 {
			t.Fatalf("input %d labelled %d, want coalesced 1 (labels %v)", i, l, labels)
		}
	}
	// BestTime keeps the exact optimum.
	if best[0] != 100 || best[1] != 100 || best[2] != 100 {
		t.Fatalf("bestTime = %v", best)
	}
}

func TestRelabelDoesNotCoalesceAcrossBigGaps(t *testing.T) {
	prog := newSynthProgram()
	T := [][]float64{
		{100, 150}, // landmark 1 is 50% slower: not a near-tie
		{150, 100},
	}
	A := [][]float64{{1, 1}, {1, 1}}
	labels, _ := Relabel(prog, T, A)
	if labels[0] != 0 || labels[1] != 1 {
		t.Fatalf("labels = %v, want [0 1]", labels)
	}
}
