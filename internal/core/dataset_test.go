package core

import (
	"testing"

	"inputtune/internal/choice"
	"inputtune/internal/cost"
)

func TestExtractFeaturesParallelMatchesSerial(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(40, 3)
	fs, es := ExtractFeatures(prog, inputs, false)
	fp, ep := ExtractFeatures(prog, inputs, true)
	for i := range fs {
		for j := range fs[i] {
			if fs[i][j] != fp[i][j] || es[i][j] != ep[i][j] {
				t.Fatalf("parallel extraction diverged at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasureLandmarksShapeAndDeterminism(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(20, 5)
	sp := prog.Space()
	cfgA := sp.DefaultConfig()
	cfgB := sp.DefaultConfig()
	cfgB.Selectors[0].Else = 1
	T, A := MeasureLandmarks(prog, inputs, []*choice.Config{cfgA, cfgB}, true)
	if len(T) != 20 || len(T[0]) != 2 || len(A) != 20 {
		t.Fatalf("shape (%d, %d)", len(T), len(T[0]))
	}
	T2, _ := MeasureLandmarks(prog, inputs, []*choice.Config{cfgA, cfgB}, false)
	for i := range T {
		for k := range T[i] {
			if T[i][k] != T2[i][k] {
				t.Fatal("parallel measurement diverged")
			}
			if T[i][k] <= 0 {
				t.Fatal("non-positive time")
			}
		}
	}
}

func TestBuildDatasetConsistentWithTraining(t *testing.T) {
	prog, model := trainSynth(t)
	d := BuildDataset(prog, synthInputs(30, 77), model, true)
	if d.NumInputs() != 30 || d.NumLandmarks() != len(model.Landmarks) {
		t.Fatalf("dataset shape (%d, %d)", d.NumInputs(), d.NumLandmarks())
	}
	for i := range d.Labels {
		if d.BestTime[i] != d.T[i][d.Labels[i]] {
			t.Fatalf("BestTime[%d] inconsistent with label", i)
		}
	}
	if len(AllRows(d)) != 30 {
		t.Fatal("AllRows wrong")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		hits := make([]int32, 100)
		forEach(100, parallel, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%v index %d hit %d times", parallel, i, h)
			}
		}
	}
	// n=0 and n=1 edge cases.
	forEach(0, true, func(int) { t.Fatal("called for n=0") })
	called := 0
	forEach(1, true, func(int) { called++ })
	if called != 1 {
		t.Fatal("n=1 not called once")
	}
}

func TestMeasureHelper(t *testing.T) {
	prog := newSynthProgram()
	in := synthInputs(1, 9)[0]
	cfg := prog.Space().DefaultConfig()
	tm, acc := Measure(prog, cfg, in)
	if tm <= 0 || acc != 1 {
		t.Fatalf("Measure = (%v, %v)", tm, acc)
	}
	m := cost.NewMeter()
	prog.Run(cfg, in, m)
	if m.Elapsed() != tm {
		t.Fatal("Measure disagrees with direct Run")
	}
}

func TestSafetyLandmarkAppendedForAccuracyPrograms(t *testing.T) {
	prog := &accProgram{*newSynthProgram()}
	inputs := synthInputs(40, 11)
	model := TrainModel(prog, inputs, Options{K1: 4, Seed: 3, TunerPopulation: 8, TunerGenerations: 5})
	if len(model.Landmarks) != 5 { // 4 clusters + safety
		t.Fatalf("landmarks = %d, want K1+1", len(model.Landmarks))
	}
	// Time-only programs get exactly K1.
	prog2 := newSynthProgram()
	model2 := TrainModel(prog2, inputs, Options{K1: 4, Seed: 3, TunerPopulation: 8, TunerGenerations: 5})
	if len(model2.Landmarks) != 4 {
		t.Fatalf("time-only landmarks = %d, want K1", len(model2.Landmarks))
	}
}
