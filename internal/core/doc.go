// Package core implements the paper's contribution: the two-level input
// learning framework for input-sensitive algorithmic autotuning.
//
// Level 1 (Section 3.1) clusters the training inputs in feature space,
// autotunes one "landmark" configuration per cluster centroid, and
// measures every landmark on every training input. Level 2 (Section 3.2)
// regroups inputs by their best landmark, builds a cost matrix blending
// performance and accuracy penalties, trains a zoo of candidate
// classifiers (max-a-priori, exhaustive feature-subset decision trees,
// all-features, and the incremental feature-examination classifier), and
// selects the production classifier by an objective that charges each
// classifier for the features it extracts.
//
// The pieces:
//
//   - TrainModel (train.go) runs the whole pipeline and records a
//     per-phase wall-clock breakdown (Report.Phases: features / tune /
//     measure / classifiers).
//   - Dataset (dataset.go) is the Level-2 datatable <F, T, A, E>;
//     Relabel and CostMatrix derive labels and misclassification costs
//     from it.
//   - BuildTreeZoo (classifiers.go) trains the whole subset-tree zoo from
//     one shared presorted-feature matrix with duplicate-job dedup;
//     SelectProduction scores candidates on held-out rows.
//   - Baselines (baselines.go): static/dynamic oracles and the one-level
//     ablation.
//   - SaveModel/LoadModel (persist.go) serialise the deployable parts.
//
// Everything runs on the shared engine.Pool and measures through the
// shared engine.Cache; training is deterministic per seed — SaveModel
// output is byte-identical with caching on or off, serial or parallel,
// memoized solver state warm or cold (all test-enforced).
package core
