package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestTrainModelBuildsSummary(t *testing.T) {
	_, model := trainSynth(t)
	s := model.Summary
	if s == nil {
		t.Fatal("trained model carries no summary")
	}
	if len(s.Centroids) != len(model.Clusters.Centroids) {
		t.Fatalf("summary has %d centroids, clustering produced %d", len(s.Centroids), len(model.Clusters.Centroids))
	}
	if s.NumInputs != model.Report.NumInputs {
		t.Fatalf("summary num_inputs %d, report says %d", s.NumInputs, model.Report.NumInputs)
	}
	total := 0.0
	for _, w := range s.Weights {
		total += w
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("summary weights sum to %v, want 1", total)
	}
	if err := s.Validate(len(model.Scaler.Means)); err != nil {
		t.Fatalf("fresh summary fails its own validation: %v", err)
	}
}

func TestArtifactSummaryRoundTrip(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(prog, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Summary == nil {
		t.Fatal("summary lost in round trip")
	}
	if !reflect.DeepEqual(loaded.Summary, model.Summary) {
		t.Fatalf("summary changed in round trip:\n%+v\nvs\n%+v", loaded.Summary, model.Summary)
	}
}

// TestLoadModelAcceptsLegacySummarylessArtifact pins backward
// compatibility: artifacts saved before the summary section existed must
// still load (with drift detection unavailable, not with an error).
func TestLoadModelAcceptsLegacySummarylessArtifact(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["summary"]; !ok {
		t.Fatal("fresh artifact carries no summary section to strip")
	}
	delete(raw, "summary")
	legacy, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(prog, bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy artifact rejected: %v", err)
	}
	if loaded.Summary != nil {
		t.Fatal("summaryless artifact loaded with a summary")
	}
	// The model still deploys.
	for _, in := range synthInputs(10, 99) {
		if model.Classify(in, nil) != loaded.Classify(in, nil) {
			t.Fatal("legacy-loaded model classification diverged")
		}
	}
}

func TestLoadModelRejectsCorruptSummary(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]func() string{
		"weights/centroids mismatch": func() string {
			return strings.Replace(good, `"weights": [`, `"weights": [0.125, `, 1)
		},
		"NaN weight": func() string {
			s := strings.Replace(good, `"weights": [`, `"weights": ["x", `, 1)
			return strings.Replace(s, `"x"`, `null`, 1)
		},
		"negative num_inputs": func() string {
			return strings.Replace(good, `"num_inputs":`, `"num_inputs": -`, 1)
		},
	}
	for name, mutate := range cases {
		payload := mutate()
		if payload == good {
			t.Fatalf("%s: mutation did not apply", name)
		}
		if _, err := LoadModel(prog, strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: corrupt summary accepted", name)
		}
	}
}

// FuzzDecodeSummary pins the artifact-summary decoder the drift loop
// trusts: any JSON the decoder accepts AND validation passes must re-
// encode to a value-identical summary (decode→re-encode fixed point,
// matching the serve codec fuzz conventions).
func FuzzDecodeSummary(f *testing.F) {
	f.Add([]byte(`{"centroids": [[0.5, -1.25]], "weights": [1], "num_inputs": 7}`))
	f.Add([]byte(`{"centroids": [[0, 0], [1, 1]], "weights": [0.25, 0.75], "num_inputs": 90}`))
	f.Add([]byte(`{"centroids": [], "weights": [], "num_inputs": 0}`))
	f.Add([]byte(`{"centroids": [[1e308]], "weights": [2], "num_inputs": -4}`))
	f.Add([]byte(`{"centroids": [[0.1], [0.2, 0.3]], "weights": [0.5, 0.5], "num_inputs": 2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Summary
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		dims := 0
		if len(s.Centroids) > 0 {
			dims = len(s.Centroids[0])
		}
		if err := s.Validate(dims); err != nil {
			return
		}
		re, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("validated summary failed to re-encode: %v", err)
		}
		var back Summary
		if err := json.Unmarshal(re, &back); err != nil {
			t.Fatalf("re-encoded summary failed to decode: %v", err)
		}
		if err := back.Validate(dims); err != nil {
			t.Fatalf("re-decoded summary fails validation: %v", err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("summary changed across round trip:\n%+v\nvs\n%+v", s, back)
		}
	})
}
