package core

import (
	"fmt"
	"math"
)

// Summary is the compact statistical fingerprint of the training input
// distribution that a deployed model carries along in its artifact: the
// z-scored Level-1 centroids and the fraction of training inputs assigned
// to each cluster. Together with the scaler moments (already persisted as
// scaler_means/scaler_stds) this is everything a serving process needs to
// ask "does live traffic still look like the distribution this model was
// trained on?" — the input-sensitivity core of the paper — without
// shipping the training set itself.
type Summary struct {
	// Centroids are the Level-1 cluster centres in z-scored feature space
	// (the space kmeans ran in), one row per cluster.
	Centroids [][]float64 `json:"centroids"`
	// Weights[c] is the fraction of training inputs nearest to centroid c
	// under the SAME restricted-dims assignment rule serving applies (see
	// SummarizeTraining). Non-negative, sums to 1.
	Weights []float64 `json:"weights"`
	// NumInputs is the training-set size the weights were estimated from.
	NumInputs int `json:"num_inputs"`
}

// SummarizeTraining builds the distribution summary a drift detector can
// actually compare live traffic against. The assignment histogram is NOT
// the k-means label distribution: serving observes only the production
// classifier's static feature subset, and nearest-centroid assignment
// restricted to those dims differs systematically from the full-space
// assignment. Computing the stored weights with the identical restricted
// rule (dims = the production static subset; nil = all features) makes
// the live-vs-training comparison apples-to-apples, so in-distribution
// traffic sits at zero expected total-variation distance and any residual
// is multinomial window noise.
func SummarizeTraining(centroids [][]float64, zrows [][]float64, dims []int) *Summary {
	s := &Summary{Centroids: centroids, Weights: make([]float64, len(centroids)), NumInputs: len(zrows)}
	for _, row := range zrows {
		best, _, _, _ := s.Nearest2(row, dims)
		s.Weights[best]++
	}
	if n := float64(len(zrows)); n > 0 {
		for c := range s.Weights {
			s.Weights[c] /= n
		}
	}
	return s
}

// Validate checks the summary's internal shape against the model's feature
// dimensionality. Old artifacts carry no summary at all (nil is fine and
// means "drift detection unavailable"); a present summary must be
// well-formed or the artifact is rejected.
func (s *Summary) Validate(numFeatures int) error {
	if s == nil {
		return nil
	}
	if len(s.Centroids) == 0 {
		return fmt.Errorf("core: summary has no centroids")
	}
	if len(s.Weights) != len(s.Centroids) {
		return fmt.Errorf("core: summary has %d weights for %d centroids", len(s.Weights), len(s.Centroids))
	}
	if s.NumInputs < 0 {
		return fmt.Errorf("core: summary num_inputs %d negative", s.NumInputs)
	}
	total := 0.0
	for c, w := range s.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("core: summary weight %d is %v", c, w)
		}
		total += w
	}
	if total > 1+1e-6 {
		return fmt.Errorf("core: summary weights sum to %v > 1", total)
	}
	for c, row := range s.Centroids {
		if len(row) != numFeatures {
			return fmt.Errorf("core: summary centroid %d has %d dims, model has %d features", c, len(row), numFeatures)
		}
		for d, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: summary centroid %d dim %d is %v", c, d, v)
			}
		}
	}
	return nil
}

// Nearest2 returns the nearest and second-nearest centroid to the z-scored
// point, restricted to the feature indices in dims (nil means all dims),
// with their squared distances. With a single centroid, second == first
// and d2 == d1. The restriction exists because serving extracts only the
// production classifier's feature subset; comparing on those dims keeps
// the request-path sampling free of extra extraction work.
func (s *Summary) Nearest2(point []float64, dims []int) (best, second int, d1, d2 float64) {
	d1, d2 = math.Inf(1), math.Inf(1)
	best, second = 0, 0
	for c, cent := range s.Centroids {
		d := 0.0
		if dims == nil {
			for i := range cent {
				diff := point[i] - cent[i]
				d += diff * diff
			}
		} else {
			for _, i := range dims {
				diff := point[i] - cent[i]
				d += diff * diff
			}
		}
		if d < d1 {
			second, d2 = best, d1
			best, d1 = c, d
		} else if d < d2 {
			second, d2 = c, d
		}
	}
	if math.IsInf(d2, 1) {
		second, d2 = best, d1
	}
	return best, second, d1, d2
}
