package core

import (
	"encoding/json"
	"fmt"
	"io"

	"inputtune/internal/choice"
	"inputtune/internal/ml/bayes"
	"inputtune/internal/ml/dtree"
	"inputtune/internal/stats"
)

// This file implements model persistence: a trained Model (landmarks +
// production classifier) serialises to JSON so that training — hours at the
// paper's scale — happens once and deployment loads the artifact. The
// Program itself is code, not data; LoadModel re-binds the stored artifact
// to the caller's Program and validates the configuration shapes against
// its Space.

// candidateJSON is the serialised form of a production classifier.
type candidateJSON struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Static  []int             `json:"static,omitempty"`
	Apriori int               `json:"apriori,omitempty"`
	Tree    *dtree.Tree       `json:"tree,omitempty"`
	Inc     *bayes.Classifier `json:"incremental,omitempty"`
}

// modelJSON is the on-disk form of a Model.
type modelJSON struct {
	Version    int              `json:"version"`
	Benchmark  string           `json:"benchmark"`
	Landmarks  []*choice.Config `json:"landmarks"`
	Production candidateJSON    `json:"production"`
	Means      []float64        `json:"scaler_means"`
	Stds       []float64        `json:"scaler_stds"`
	// Summary is the training-distribution fingerprint for drift
	// detection. omitempty keeps artifacts saved before this section
	// loadable (a nil summary just disables drift detection).
	Summary *Summary `json:"summary,omitempty"`
	Report  Report   `json:"report"`
}

// SaveModel writes the deployable parts of the model as JSON.
func SaveModel(m *Model, w io.Writer) error {
	cj := candidateJSON{
		Name:   m.Production.Name,
		Kind:   m.Production.Kind.String(),
		Static: m.Production.Static,
	}
	switch m.Production.Kind {
	case MaxAPriori:
		cj.Apriori = m.Production.apriori
	case SubsetTree:
		cj.Tree = m.Production.tree
	case Incremental:
		cj.Inc = m.Production.inc
	default:
		return fmt.Errorf("core: cannot serialise classifier kind %v", m.Production.Kind)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(modelJSON{
		Version:    1,
		Benchmark:  m.Program.Name(),
		Landmarks:  m.Landmarks,
		Production: cj,
		Means:      m.Scaler.Means,
		Stds:       m.Scaler.Stds,
		Summary:    m.Summary,
		Report:     m.Report,
	})
}

// LoadModel reads a model saved by SaveModel and binds it to prog, which
// must be the same benchmark (by name) with an identical configuration
// space. The loaded model deploys (Classify/Run) but does not retain the
// training dataset or Level-1 clusters, so it cannot drive the one-level
// baseline.
func LoadModel(prog Program, r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mj.Version != 1 {
		return nil, fmt.Errorf("core: unsupported model version %d", mj.Version)
	}
	if mj.Benchmark != prog.Name() {
		return nil, fmt.Errorf("core: model is for %q, program is %q", mj.Benchmark, prog.Name())
	}
	space := prog.Space()
	for i, lm := range mj.Landmarks {
		if lm == nil {
			return nil, fmt.Errorf("core: landmark %d missing", i)
		}
		if err := space.Validate(lm); err != nil {
			return nil, fmt.Errorf("core: landmark %d invalid for program space: %w", i, err)
		}
	}
	cand := &Candidate{Name: mj.Production.Name, Static: mj.Production.Static}
	switch mj.Production.Kind {
	case "max-a-priori":
		cand.Kind = MaxAPriori
		cand.apriori = mj.Production.Apriori
		if cand.apriori < 0 || cand.apriori >= len(mj.Landmarks) {
			return nil, fmt.Errorf("core: a-priori landmark %d out of range", cand.apriori)
		}
	case "subset-tree":
		cand.Kind = SubsetTree
		if mj.Production.Tree == nil {
			return nil, fmt.Errorf("core: subset-tree classifier missing tree payload")
		}
		cand.tree = mj.Production.Tree
	case "incremental":
		cand.Kind = Incremental
		if mj.Production.Inc == nil {
			return nil, fmt.Errorf("core: incremental classifier missing payload")
		}
		cand.inc = mj.Production.Inc
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %q", mj.Production.Kind)
	}
	if err := mj.Summary.Validate(len(mj.Means)); err != nil {
		return nil, err
	}
	scaler := stats.NewZScorer(mj.Means, mj.Stds)
	return &Model{
		Program:    prog,
		Landmarks:  mj.Landmarks,
		Production: cand,
		Scaler:     scaler,
		Summary:    mj.Summary,
		Report:     mj.Report,
	}, nil
}
