package core

import (
	"bytes"
	"testing"
)

// saveBytes serialises a model for byte-level comparison.
func saveBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := SaveModel(m, &b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTrainModelCacheOnOffIdentical is the engine's core guarantee: the
// memoized measurement cache is a pure optimisation. For a fixed seed,
// training with Parallel: true and the cache enabled must produce the
// byte-identical serialised model as the cache-disabled escape hatch.
func TestTrainModelCacheOnOffIdentical(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(100, 11)
	base := Options{K1: 5, Seed: 3, TunerPopulation: 10, TunerGenerations: 8, Parallel: true}

	withCache := base
	cached := TrainModel(prog, inputs, withCache)

	noCache := base
	noCache.DisableCache = true
	uncached := TrainModel(prog, inputs, noCache)

	a, b := saveBytes(t, cached), saveBytes(t, uncached)
	if !bytes.Equal(a, b) {
		t.Fatalf("cache changed the trained model:\ncached:   %s\nuncached: %s", a, b)
	}
	if cs := cached.Report.Engine; cs.Hits == 0 {
		t.Fatalf("cache reported no hits over a full training run: %+v", cs)
	}
	if cs := uncached.Report.Engine; cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("escape hatch still recorded cache traffic: %+v", cs)
	}
}

// TestTrainModelParallelMatchesSerial: the shared worker pool must not
// change results, only wall-clock.
func TestTrainModelParallelMatchesSerial(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(80, 21)
	opts := Options{K1: 4, Seed: 9, TunerPopulation: 8, TunerGenerations: 6}
	serial := TrainModel(prog, inputs, opts)
	opts.Parallel = true
	parallel := TrainModel(prog, inputs, opts)
	if !bytes.Equal(saveBytes(t, serial), saveBytes(t, parallel)) {
		t.Fatal("parallel training changed the model")
	}
}

func TestTrainModelCacheCapacityEviction(t *testing.T) {
	prog := newSynthProgram()
	inputs := synthInputs(60, 31)
	opts := Options{K1: 3, Seed: 5, TunerPopulation: 8, TunerGenerations: 6, CacheCapacity: 32}
	tiny := TrainModel(prog, inputs, opts)
	if tiny.Report.Engine.Evictions == 0 {
		t.Fatalf("32-entry cache never evicted: %+v", tiny.Report.Engine)
	}
	// Eviction costs speed, never correctness.
	opts.CacheCapacity = 0
	full := TrainModel(prog, inputs, opts)
	if !bytes.Equal(saveBytes(t, tiny), saveBytes(t, full)) {
		t.Fatal("cache capacity changed the trained model")
	}
}

func TestReportEngineStats(t *testing.T) {
	_, model := trainSynth(t)
	cs := model.Report.Engine
	if cs.Misses == 0 {
		t.Fatalf("no cache traffic recorded: %+v", cs)
	}
	if rate := cs.HitRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("hit rate %v outside (0, 1)", rate)
	}
	if model.Report.TunerCacheHits == 0 {
		t.Fatal("tuner memo recorded no duplicate genomes")
	}
}
