package core

import (
	"bytes"
	"strings"
	"testing"

	"inputtune/internal/cost"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(prog, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Landmarks identical.
	if len(loaded.Landmarks) != len(model.Landmarks) {
		t.Fatalf("landmark count %d vs %d", len(loaded.Landmarks), len(model.Landmarks))
	}
	for k := range model.Landmarks {
		if loaded.Landmarks[k].String() != model.Landmarks[k].String() {
			t.Fatalf("landmark %d changed in round trip", k)
		}
	}
	// Deployment decisions identical on fresh inputs.
	for _, in := range synthInputs(40, 555) {
		mOrig, mLoad := cost.NewMeter(), cost.NewMeter()
		lOrig := model.Classify(in, mOrig)
		lLoad := loaded.Classify(in, mLoad)
		if lOrig != lLoad {
			t.Fatalf("classification diverged: %d vs %d", lOrig, lLoad)
		}
		if mOrig.Elapsed() != mLoad.Elapsed() {
			t.Fatalf("feature cost diverged: %v vs %v", mOrig.Elapsed(), mLoad.Elapsed())
		}
	}
	// Report survives.
	if loaded.Report.Production != model.Report.Production {
		t.Fatal("report lost in round trip")
	}
}

func TestLoadModelRejectsWrongProgram(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	other := &accProgram{*newSynthProgram()} // same space, but HasAccuracy differs; rename it
	_ = other
	// A program with a different name must be rejected.
	renamed := &renamedProgram{prog}
	if _, err := LoadModel(renamed, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("wrong-name program accepted")
	}
}

type renamedProgram struct{ *synthProgram }

func (r *renamedProgram) Name() string { return "something-else" }

func TestLoadModelRejectsCorruptPayloads(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"garbage":       "{not json",
		"wrong version": strings.Replace(good, `"version": 1`, `"version": 99`, 1),
		"bad kind":      strings.Replace(good, `"kind":`, `"kind": "alien", "x":`, 1),
	}
	for name, payload := range cases {
		if _, err := LoadModel(prog, strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: corrupt payload accepted", name)
		}
	}
}

func TestLoadModelValidatesLandmarks(t *testing.T) {
	prog, model := trainSynth(t)
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt a landmark's selector choice beyond the space's range.
	bad := strings.Replace(buf.String(), `"else":`, `"else": 99, "x":`, 1)
	if _, err := LoadModel(prog, strings.NewReader(bad)); err == nil {
		t.Fatal("invalid landmark accepted")
	}
}

func TestSaveLoadAccuracyProgramWithTreeOrIncremental(t *testing.T) {
	// Train an accuracy-bearing synthetic program to exercise tree and
	// incremental serialisation paths (whichever wins selection).
	prog := &accProgram{*newSynthProgram()}
	inputs := synthInputs(80, 13)
	model := TrainModel(prog, inputs, Options{
		K1: 4, Seed: 5, TunerPopulation: 10, TunerGenerations: 8, Parallel: true,
	})
	var buf bytes.Buffer
	if err := SaveModel(model, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(prog, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range synthInputs(20, 777) {
		if model.Classify(in, nil) != loaded.Classify(in, nil) {
			t.Fatal("accuracy-program classification diverged after round trip")
		}
	}
}
