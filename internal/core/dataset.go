package core

import (
	"inputtune/internal/choice"
	"inputtune/internal/engine"
	"inputtune/internal/stats"
)

// Dataset is the Level-2 datatable of 4-tuples <F, T, A, E> (Section 3.2):
// per training input, its feature vector, its execution time and accuracy
// under every landmark configuration, and its per-feature extraction costs.
type Dataset struct {
	// F[i] is the M-dimensional raw feature vector of input i.
	F [][]float64
	// E[i][f] is the extraction cost of feature f on input i.
	E [][]float64
	// T[i][k] is the execution time of landmark k on input i.
	T [][]float64
	// A[i][k] is the accuracy achieved by landmark k on input i.
	A [][]float64
	// Labels[i] is the best landmark for input i (the Level-2 relabelling).
	Labels []int
	// BestTime[i] is T[i][Labels[i]] — the dynamic-oracle time.
	BestTime []float64
}

// NumInputs returns N.
func (d *Dataset) NumInputs() int { return len(d.F) }

// NumLandmarks returns K1.
func (d *Dataset) NumLandmarks() int {
	if len(d.T) == 0 {
		return 0
	}
	return len(d.T[0])
}

// ExtractFeatures computes the full feature battery for every input,
// optionally in parallel.
func ExtractFeatures(prog Program, inputs []Input, parallel bool) (F, E [][]float64) {
	set := prog.Features()
	F = make([][]float64, len(inputs))
	E = make([][]float64, len(inputs))
	forEach(len(inputs), parallel, func(i int) {
		F[i], E[i] = set.ExtractAll(inputs[i])
	})
	return F, E
}

// MeasureLandmarks runs every landmark on every input, filling T and A.
func MeasureLandmarks(prog Program, inputs []Input, landmarks []*choice.Config, parallel bool) (T, A [][]float64) {
	return MeasureLandmarksCached(prog, inputs, landmarks, nil, parallel)
}

// MeasureLandmarksCached is MeasureLandmarks backed by a shared measurement
// cache (nil disables memoization). Two wins: (config, input) pairs the
// landmark tuner already measured are free, and clusters whose tuners
// converged to structurally identical configurations are measured once
// instead of once per landmark. The cache must be scoped to this input set.
func MeasureLandmarksCached(prog Program, inputs []Input, landmarks []*choice.Config, cache *engine.Cache, parallel bool) (T, A [][]float64) {
	T = make([][]float64, len(inputs))
	A = make([][]float64, len(inputs))
	keys := make([]string, len(landmarks))
	if cache != nil {
		for k, lm := range landmarks {
			keys[k] = lm.Key()
		}
	}
	type job struct{ i, k int }
	jobs := make([]job, 0, len(inputs)*len(landmarks))
	for i := range inputs {
		T[i] = make([]float64, len(landmarks))
		A[i] = make([]float64, len(landmarks))
		for k := range landmarks {
			jobs = append(jobs, job{i, k})
		}
	}
	forEach(len(jobs), parallel, func(j int) {
		i, k := jobs[j].i, jobs[j].k
		res := cache.Measure(engine.Key{Config: keys[k], Input: i}, func() engine.Measurement {
			return measureInput(prog, landmarks[k], inputs[i])
		})
		T[i][k] = res.Time
		A[i][k] = res.Accuracy
	})
	return T, A
}

// measureInput is the one compute path behind every cached measurement:
// Measure's fresh-meter run packaged as an engine.Measurement.
func measureInput(prog Program, cfg *choice.Config, in Input) engine.Measurement {
	t, acc := Measure(prog, cfg, in)
	return engine.Measurement{Time: t, Accuracy: acc}
}

// Relabel assigns each input its best landmark: for time-only programs the
// fastest; for variable-accuracy programs the fastest among those meeting
// the accuracy threshold H1, or the most accurate when none does. This is
// the Level-2 cluster refinement that closes the paper's mapping-disparity
// gap.
//
// Ties are the crux: on most inputs several landmarks are within a few
// percent of the best, and breaking ties by raw argmin makes the label a
// coin flip that classifiers then memorise as noise. Among the landmarks
// within nearTieFactor of the per-input best (and feasible), Relabel picks
// the one that is most often near-best-and-feasible globally, so labels
// coalesce onto a small set of robust landmarks. BestTime still records
// the exact per-input optimum (the dynamic oracle is unaffected).
func Relabel(prog Program, T, A [][]float64) (labels []int, bestTime []float64) {
	const nearTieFactor = 1.10
	labels = make([]int, len(T))
	bestTime = make([]float64, len(T))
	h1 := prog.AccuracyThreshold()
	hasAcc := prog.HasAccuracy()
	feasible := func(i, k int) bool { return !hasAcc || A[i][k] >= h1 }

	// Pass 1: the exact per-input best.
	best := make([]int, len(T))
	for i := range T {
		b := -1
		for k := range T[i] {
			if !feasible(i, k) {
				continue
			}
			if b == -1 || T[i][k] < T[i][b] {
				b = k
			}
		}
		if b == -1 {
			// No landmark meets the accuracy target: take the most accurate.
			b = stats.ArgMax(A[i])
		}
		best[i] = b
		bestTime[i] = T[i][b]
	}
	if len(T) == 0 {
		return labels, bestTime
	}
	// Pass 2: global robustness score — how often is each landmark both
	// feasible and within the near-tie band of the best?
	k1 := len(T[0])
	score := make([]float64, k1)
	for i := range T {
		for k := 0; k < k1; k++ {
			if feasible(i, k) && T[i][k] <= nearTieFactor*bestTime[i] {
				score[k]++
			}
		}
	}
	// Pass 3: labels prefer the most robust near-tied landmark.
	for i := range T {
		if hasAcc && !feasible(i, best[i]) {
			// Max-accuracy fallback input: keep the exact argmax.
			labels[i] = best[i]
			continue
		}
		lbl := best[i]
		for k := 0; k < k1; k++ {
			if feasible(i, k) && T[i][k] <= nearTieFactor*bestTime[i] && score[k] > score[lbl] {
				lbl = k
			}
		}
		labels[i] = lbl
	}
	return labels, bestTime
}

// CostMatrix builds the misclassification cost matrix of Section 3.2:
//
//	C[i][j] = λ · Ca[i][j] · maxCp + Cp[i][j]
//
// where Cp[i][j] is the mean relative time penalty of running landmark j on
// inputs labelled i, and Ca[i][j] is the fraction of those inputs for which
// landmark j misses the accuracy threshold. λ = 0.5 in the paper.
//
// Deviation from the paper: the accuracy penalty is scaled by the GLOBAL
// maximum time penalty rather than the per-row maximum max_t(Cp[i][t]).
// With per-row scaling, a label class whose landmarks happen to be
// time-homogeneous (maxCp[i] ≈ 0) makes accuracy violations nearly free,
// and the trees learn fast-but-infeasible leaves; the global scale keeps
// one unit of accuracy violation comparable to the worst time mistake in
// the dataset, which is also the spirit of the paper's "the former acts as
// a leading factor".
func CostMatrix(prog Program, d *Dataset, lambda float64) [][]float64 {
	k1 := d.NumLandmarks()
	cp := make([][]float64, k1)
	ca := make([][]float64, k1)
	counts := make([]float64, k1)
	for i := range cp {
		cp[i] = make([]float64, k1)
		ca[i] = make([]float64, k1)
	}
	h1 := prog.AccuracyThreshold()
	hasAcc := prog.HasAccuracy()
	for n, li := range d.Labels {
		counts[li]++
		base := d.T[n][li]
		if base <= 0 {
			base = 1e-12
		}
		for j := 0; j < k1; j++ {
			pen := (d.T[n][j] - d.T[n][li]) / base
			if pen < 0 {
				pen = 0
			}
			cp[li][j] += pen
			if hasAcc && d.A[n][j] < h1 {
				ca[li][j]++
			}
		}
	}
	maxCp := 0.0
	for i := 0; i < k1; i++ {
		if counts[i] == 0 {
			continue
		}
		for j := 0; j < k1; j++ {
			cp[i][j] /= counts[i]
			ca[i][j] /= counts[i]
			if cp[i][j] > maxCp {
				maxCp = cp[i][j]
			}
		}
	}
	c := make([][]float64, k1)
	for i := 0; i < k1; i++ {
		c[i] = make([]float64, k1)
		if counts[i] == 0 {
			continue
		}
		for j := 0; j < k1; j++ {
			c[i][j] = lambda*ca[i][j]*maxCp + cp[i][j]
		}
	}
	return c
}

// forEach runs fn(i) for i in [0, n), optionally on the shared engine
// pool. All parallel sections of the pipeline draw from that one pool, so
// nesting (the per-landmark loop outside, GA evaluation inside) composes
// without over- or under-subscribing GOMAXPROCS.
func forEach(n int, parallel bool, fn func(i int)) {
	if !parallel {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	engine.Default().ForEach(n, fn)
}
