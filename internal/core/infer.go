package core

import (
	"inputtune/internal/choice"
	"inputtune/internal/cost"
)

// This file is the deployment-side inference contract: what a serving
// layer may do with a trained (or loaded) Model from many goroutines at
// once.
//
// A *Model is safe for concurrent readers. Everything inference touches is
// immutable after training/loading: landmark configurations, the
// production classifier's tree/posterior tables, the scaler, and the
// feature Set (whose LevelFuncs are required to be deterministic and
// side-effect free; benchmark inputs that cache derived values do so
// behind sync.Once). The ONE mutable object on the inference path is the
// cost.Meter, which is explicitly not concurrency-safe — the historical
// hazard was callers threading a single meter through Classify/Run from
// several goroutines, which races on its counters and under-counts
// charges. Infer closes that hole: it allocates a private meter per call
// and returns the charged units by value, so there is no shared mutable
// state left for callers to misuse.

// Decision is the outcome of one production inference: the selected
// landmark, its configuration, and the feature-extraction cost the
// classifier incurred deciding (virtual-time units).
type Decision struct {
	// Landmark is the index into Model.Landmarks the classifier selected.
	Landmark int
	// Config is the selected landmark configuration (shared, read-only).
	Config *choice.Config
	// FeatureUnits is the virtual-time cost of the features extracted for
	// this decision — the g_i term of the paper's deployment objective.
	FeatureUnits float64
}

// CompileClassifiers lowers the production classifier's decision tree
// into its flat branch-free form (dtree.Compile), so every subsequent
// Infer/ClassifyInput walks the contiguous node array instead of the
// pointer tree. Serving registries call it once per Load/Install, before
// the snapshot goes live; it is idempotent, concurrency-safe (the
// compiled form is published atomically), and invisible to SaveModel.
func (m *Model) CompileClassifiers() {
	if m.Production != nil {
		m.Production.Compile()
	}
}

// Infer classifies a fresh input and returns the full decision. Unlike
// Classify it takes no meter: a private meter is created per call, making
// Infer safe to invoke concurrently on one shared *Model — the race-free
// entry point serving layers should use.
func (m *Model) Infer(in Input) Decision {
	meter := cost.NewMeter()
	label := m.Production.ClassifyInput(m.Program.Features(), in, meter)
	return Decision{
		Landmark:     label,
		Config:       m.Landmarks[label],
		FeatureUnits: meter.Elapsed(),
	}
}
