package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"inputtune/internal/cost"
	"inputtune/internal/feature"
	"inputtune/internal/ml/bayes"
	"inputtune/internal/ml/dtree"
)

// SatisfactionBuffer is the one-sided binomial confidence margin added to
// the satisfaction threshold when it is estimated from n inputs: roughly
// 1.5 standard errors, capped at 3 percentage points. At the paper's scale
// (tens of thousands of inputs) it vanishes.
func SatisfactionBuffer(h2 float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	b := 1.5 * math.Sqrt(h2*(1-h2)/float64(n))
	if b > 0.03 {
		b = 0.03
	}
	return b
}

// Kind enumerates the classifier families of Section 3.2.
type Kind int

const (
	// MaxAPriori always predicts the most common training label and
	// extracts no features.
	MaxAPriori Kind = iota
	// SubsetTree is a cost-sensitive decision tree over one feature subset
	// (the exhaustive feature-subsets family; the all-features classifier
	// is the member using every property at its most accurate level).
	SubsetTree
	// Incremental is the incremental feature-examination classifier:
	// features are acquired cheapest-first until the posterior is decisive.
	Incremental
)

func (k Kind) String() string {
	switch k {
	case MaxAPriori:
		return "max-a-priori"
	case SubsetTree:
		return "subset-tree"
	case Incremental:
		return "incremental"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Candidate is one trained classifier from the zoo.
type Candidate struct {
	Name string
	Kind Kind
	// Static is the feature-index set a non-incremental classifier
	// extracts before predicting (nil for max-a-priori).
	Static []int

	apriori int
	tree    *dtree.Tree
	inc     *bayes.Classifier

	// compiled is the flat array form of tree (dtree.CompiledTree), built
	// by Compile for serving deployments and consulted by the predict
	// paths when present. Atomic because Install-time compilation may run
	// while other goroutines are already classifying on the model; labels
	// are identical either way (differential-test enforced), so readers
	// racing the store just take the pointer walk once more. Never
	// serialized: SaveModel artifacts are byte-identical with or without.
	compiled atomic.Pointer[dtree.CompiledTree]
}

// Compile lowers a subset-tree classifier's pointer tree into the flat
// branch-free form the serving hot path walks. Idempotent; a no-op for
// classifier kinds without a tree.
func (c *Candidate) Compile() {
	if c.Kind == SubsetTree && c.tree != nil && c.compiled.Load() == nil {
		c.compiled.Store(c.tree.Compile())
	}
}

// PredictRow classifies a fully extracted raw feature row, returning the
// predicted landmark and the feature indices whose extraction the caller
// should charge for.
func (c *Candidate) PredictRow(row []float64) (label int, used []int) {
	switch c.Kind {
	case MaxAPriori:
		return c.apriori, nil
	case SubsetTree:
		if ct := c.compiled.Load(); ct != nil {
			return ct.Predict(row), c.Static
		}
		return c.tree.Predict(row), c.Static
	case Incremental:
		return c.inc.Classify(func(f int) float64 { return row[f] })
	default:
		panic("core: unknown classifier kind")
	}
}

// ClassifyInput classifies a fresh input, extracting only the features the
// classifier needs and charging their cost to meter (which may be nil).
func (c *Candidate) ClassifyInput(set *feature.Set, in Input, meter *cost.Meter) int {
	switch c.Kind {
	case MaxAPriori:
		return c.apriori
	case SubsetTree:
		row := set.ExtractSubset(in, c.Static, meter)
		if ct := c.compiled.Load(); ct != nil {
			return ct.Predict(row)
		}
		return c.tree.Predict(row)
	case Incremental:
		extracted := map[int]float64{}
		label, _ := c.inc.Classify(func(f int) float64 {
			if v, ok := extracted[f]; ok {
				return v
			}
			row := set.ExtractSubset(in, []int{f}, meter)
			extracted[f] = row[f]
			return row[f]
		})
		return label
	default:
		panic("core: unknown classifier kind")
	}
}

// NewMaxAPriori builds the prior-only classifier from training labels.
func NewMaxAPriori(labels []int, k1 int) *Candidate {
	counts := make([]int, k1)
	for _, l := range labels {
		counts[l]++
	}
	best := 0
	for k, c := range counts {
		if c > counts[best] {
			best = k
		}
	}
	return &Candidate{Name: "max-a-priori", Kind: MaxAPriori, apriori: best}
}

// NewSubsetTree trains a cost-sensitive decision tree restricted to the
// given feature subset. Static is narrowed to the features the tree
// actually splits on, so deployment never extracts unused features. The
// minimum leaf size scales with the training-set size so that leaf labels
// are chosen cost-sensitively over a population of inputs rather than
// memorising individual (often near-tied, hence noisy) labels.
func NewSubsetTree(name string, X [][]float64, y []int, subsetIdx []int, k1 int, costMatrix [][]float64, maxDepth int) *Candidate {
	tree := dtree.Train(X, y, dtree.Options{
		NumClasses: k1,
		Features:   subsetIdx,
		CostMatrix: costMatrix,
		MaxDepth:   maxDepth,
		MinLeaf:    subsetTreeMinLeaf(len(X)),
	})
	used := tree.FeaturesUsed()
	return &Candidate{Name: name, Kind: SubsetTree, Static: used, tree: tree}
}

// subsetTreeMinLeaf is the minimum leaf size of every subset tree, shared
// by NewSubsetTree and BuildTreeZoo so the two construction paths can
// never diverge: it scales with the training-set size (see NewSubsetTree)
// with a floor of 4.
func subsetTreeMinLeaf(n int) int {
	if minLeaf := n / 40; minLeaf > 4 {
		return minLeaf
	}
	return 4
}

// TreeSpec describes one subset-tree member of the classifier zoo: a name,
// a feature subset, and the cost matrix (λ setting) it trains under.
type TreeSpec struct {
	Name       string
	Subset     []int
	CostMatrix [][]float64
}

// zooUseReference routes BuildTreeZoo through the per-tree ReferenceTrain
// path — no shared backbone, no dedup — exactly the pre-backbone trainer.
// The parity test flips it to prove both paths serialise byte-identically.
var zooUseReference = false

// zooFingerprint is an injective binary encoding of the parts of a TreeSpec
// that influence the trained tree: the feature subset and the cost-matrix
// contents. Rows, labels and tree bounds are constant across one zoo build,
// so equal fingerprints ⇔ identical training jobs. Duplicates are common in
// practice: the zoo trains every subset at three λ settings, and whenever no
// landmark misses the accuracy threshold the three cost matrices coincide.
func zooFingerprint(subset []int, cm [][]float64) string {
	b := make([]byte, 0, 8*(1+len(subset)+len(cm)*len(cm)))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(subset)))
	b = append(b, buf[:]...)
	for _, f := range subset {
		binary.LittleEndian.PutUint64(buf[:], uint64(f))
		b = append(b, buf[:]...)
	}
	for _, row := range cm {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			b = append(b, buf[:]...)
		}
	}
	return string(b)
}

// BuildTreeZoo trains every subset-tree candidate of the classifier zoo on
// one shared presorted-feature backbone: the classifier-training rows are
// column-transposed and sorted once (dtree.NewFeatureMatrix), and each tree
// reuses those sort permutations instead of re-sorting at every node. Specs
// whose (subset, cost matrix) fingerprints collide share a single trained
// tree, and the distinct jobs run in parallel on the engine worker pool.
// It returns the candidates in spec order plus the number of distinct trees
// trained and the number of dedup hits.
func BuildTreeZoo(X [][]float64, y []int, specs []TreeSpec, k1, maxDepth int, parallel bool) (cands []*Candidate, uniqueTrees, dedupHits int) {
	minLeaf := subsetTreeMinLeaf(len(X))
	treeOpts := func(sp TreeSpec) dtree.Options {
		return dtree.Options{
			NumClasses: k1,
			Features:   sp.Subset,
			CostMatrix: sp.CostMatrix,
			MaxDepth:   maxDepth,
			MinLeaf:    minLeaf,
		}
	}
	wrap := func(sp TreeSpec, tree *dtree.Tree) *Candidate {
		return &Candidate{Name: sp.Name, Kind: SubsetTree, Static: tree.FeaturesUsed(), tree: tree}
	}
	cands = make([]*Candidate, len(specs))
	if zooUseReference {
		forEach(len(specs), parallel, func(i int) {
			cands[i] = wrap(specs[i], dtree.ReferenceTrain(X, y, treeOpts(specs[i])))
		})
		return cands, len(specs), 0
	}
	// Deduplicate: jobOf[i] is the index of the distinct job spec i maps
	// to; jobs holds the spec index that owns each distinct job.
	jobOf := make([]int, len(specs))
	var jobs []int
	seen := make(map[string]int, len(specs))
	for i, sp := range specs {
		fp := zooFingerprint(sp.Subset, sp.CostMatrix)
		j, ok := seen[fp]
		if !ok {
			j = len(jobs)
			seen[fp] = j
			jobs = append(jobs, i)
		} else {
			dedupHits++
		}
		jobOf[i] = j
	}
	fm := dtree.NewFeatureMatrix(X)
	trees := make([]*dtree.Tree, len(jobs))
	forEach(len(jobs), parallel, func(j int) {
		trees[j] = dtree.TrainMatrix(fm, y, treeOpts(specs[jobs[j]]))
	})
	for i, sp := range specs {
		cands[i] = wrap(sp, trees[jobOf[i]])
	}
	return cands, len(jobs), dedupHits
}

// NewFixed builds a trivial classifier that always predicts the given
// landmark. The zoo includes one for the training static oracle, so the
// production classifier can never be worse than deploying the best single
// configuration.
func NewFixed(name string, landmark int) *Candidate {
	return &Candidate{Name: name, Kind: MaxAPriori, apriori: landmark}
}

// NewIncremental trains the incremental feature-examination classifier over
// the given feature indices, acquiring them cheapest-first according to
// meanCost. The region-count and posterior-threshold grids are searched
// with the provided score function (lower is better) — the one place the
// paper plugs the domain cost objective into a classifier's inner loop.
func NewIncremental(X [][]float64, y []int, k1 int, featIdx []int, meanCost []float64, score func(*Candidate) float64) *Candidate {
	order := append([]int(nil), featIdx...)
	sort.Slice(order, func(a, b int) bool { return meanCost[order[a]] < meanCost[order[b]] })
	wrap := func(cl *bayes.Classifier) *Candidate {
		return &Candidate{Name: "incremental", Kind: Incremental, Static: featIdx, inc: cl}
	}
	inc, _ := bayes.FitSearch(X, y, bayes.Options{NumClasses: k1, Order: order},
		[]int{4, 8, 16}, []float64{0.6, 0.75, 0.9},
		func(cl *bayes.Classifier) float64 { return score(wrap(cl)) })
	return wrap(inc)
}

// Score is the production-selection measurement of one candidate on a set
// of dataset rows (Section 3.2, "Candidate Selection of Production
// Classifier"). Following the paper's definition of δ_i — "the minimum
// execution time for the input i by all the representative
// polyalgorithms" — each input's cost r_i = τ(i, c_i) + g_i is normalised
// by δ_i, so cheap inputs (where the wrong landmark can cost 10-20× and
// feature extraction is proportionally expensive) weigh as much as large
// ones.
type Score struct {
	Name string
	Kind Kind
	// MeanCost is R = mean_i (τ(i, c_i) + g_i) / δ_i. 1.0 is the dynamic
	// oracle with free features; lower is better.
	MeanCost float64
	// MeanExec and MeanFeat split R into its execution and feature terms.
	MeanExec float64
	MeanFeat float64
	// Satisfaction is the fraction of rows whose predicted landmark meets
	// the accuracy threshold H1.
	Satisfaction float64
	// Valid reports Satisfaction >= H2 (always true for time-only
	// programs).
	Valid bool
	// FeaturesUsed is the mean number of features extracted per input.
	FeaturesUsed float64
}

// ScoreCandidate evaluates cand on the dataset rows idx.
func ScoreCandidate(prog Program, d *Dataset, idx []int, cand *Candidate, h2 float64) Score {
	var execSum, featSum, satisfied, featCount float64
	h1 := prog.AccuracyThreshold()
	hasAcc := prog.HasAccuracy()
	for _, i := range idx {
		label, used := cand.PredictRow(d.F[i])
		delta := d.BestTime[i]
		if delta <= 0 {
			delta = 1e-12
		}
		execSum += d.T[i][label] / delta
		for _, f := range used {
			featSum += d.E[i][f] / delta
		}
		featCount += float64(len(used))
		if !hasAcc || d.A[i][label] >= h1 {
			satisfied++
		}
	}
	n := float64(len(idx))
	s := Score{
		Name:         cand.Name,
		Kind:         cand.Kind,
		MeanExec:     execSum / n,
		MeanFeat:     featSum / n,
		Satisfaction: satisfied / n,
		FeaturesUsed: featCount / n,
	}
	s.MeanCost = s.MeanExec + s.MeanFeat
	s.Valid = !hasAcc || s.Satisfaction >= h2
	return s
}

// SelectProduction scores every candidate on the validation rows and
// returns the index of the winner: the lowest mean cost among valid
// candidates, or the highest satisfaction when none is valid. Validity
// additionally requires the satisfaction threshold to hold over ALL
// dataset rows (training rows included): satisfaction is a property of
// the landmark/input interaction, not of the classifier's fit, so the
// wider estimate guards against validation-set flukes without biasing the
// cost comparison, which stays on held-out rows.
func SelectProduction(prog Program, d *Dataset, validIdx []int, cands []*Candidate, h2 float64) (int, []Score) {
	scores := make([]Score, len(cands))
	best := -1
	all := make([]int, d.NumInputs())
	for i := range all {
		all[i] = i
	}
	// At training-set sizes far below the paper's tens of thousands, a
	// satisfaction estimate at exactly H2 is a coin flip on fresh inputs;
	// require a one-sided binomial confidence buffer above H2.
	buffered := h2 + SatisfactionBuffer(h2, len(all))
	for i, c := range cands {
		scores[i] = ScoreCandidate(prog, d, validIdx, c, h2)
		if scores[i].Valid && prog.HasAccuracy() {
			allScore := ScoreCandidate(prog, d, all, c, h2)
			if allScore.Satisfaction < buffered {
				scores[i].Valid = false
				scores[i].Satisfaction = allScore.Satisfaction
			}
		}
		if !scores[i].Valid {
			continue
		}
		if best == -1 || scores[i].MeanCost < scores[best].MeanCost {
			best = i
		}
	}
	if best == -1 {
		// Nothing meets H2: fall back to max satisfaction, ties by cost.
		bestSat := math.Inf(-1)
		for i, s := range scores {
			if s.Satisfaction > bestSat ||
				(s.Satisfaction == bestSat && s.MeanCost < scores[best].MeanCost) {
				best, bestSat = i, s.Satisfaction
			}
		}
	}
	return best, scores
}
