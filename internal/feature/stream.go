package feature

import "sync"

// This file is the incremental side of feature extraction: wire decoders
// assemble an input's numeric payload chunk by chunk into pooled buffers
// (Accumulator), and the completed buffer becomes the input's backing array
// with no second materialization. Extraction itself then runs through the
// one shared routine (Set.extractOne), so a streamed request computes
// bit-identical feature values to an offline, fully materialized one.

// Buffer size classes are powers of two from 1<<minPoolShift to
// 1<<maxPoolShift float64s (256 .. 2M elements, 2 KB .. 16 MB). Requests
// outside the classes fall back to plain allocation.
const (
	minPoolShift = 8
	maxPoolShift = 21
)

// bufPools[i] holds []float64 slices with capacity 1<<(minPoolShift+i).
var bufPools = func() []*sync.Pool {
	ps := make([]*sync.Pool, maxPoolShift-minPoolShift+1)
	for i := range ps {
		ps[i] = &sync.Pool{}
	}
	return ps
}()

// classFor returns the pool index of the smallest class holding n
// elements, or -1 when n exceeds the largest class.
func classFor(n int) int {
	for i := 0; i <= maxPoolShift-minPoolShift; i++ {
		if n <= 1<<(minPoolShift+i) {
			return i
		}
	}
	return -1
}

// GetBuffer returns a zero-length float64 slice with capacity at least
// capacityHint, drawn from a size-classed pool when possible. The slice's
// contents beyond its length are unspecified; callers append into it.
func GetBuffer(capacityHint int) []float64 {
	if capacityHint < 0 {
		capacityHint = 0
	}
	cls := classFor(capacityHint)
	if cls < 0 {
		return make([]float64, 0, capacityHint)
	}
	if v := bufPools[cls].Get(); v != nil {
		return v.([]float64)[:0]
	}
	return make([]float64, 0, 1<<(minPoolShift+cls))
}

// PutBuffer returns a buffer obtained from GetBuffer (or anywhere else) to
// the pool. The caller must not touch buf afterwards: a later GetBuffer
// may hand the same backing array to another goroutine. Small or oversized
// buffers are dropped for the garbage collector.
func PutBuffer(buf []float64) {
	c := cap(buf)
	if c < 1<<minPoolShift {
		return
	}
	// File under the largest class the capacity fully covers, so a pooled
	// buffer always satisfies its class's capacity promise.
	cls := -1
	for i := maxPoolShift - minPoolShift; i >= 0; i-- {
		if c >= 1<<(minPoolShift+i) {
			cls = i
			break
		}
	}
	if cls < 0 {
		return
	}
	bufPools[cls].Put(buf[:0])
}

// Accumulator assembles one vector field of an input from a chunked
// producer — typically a wire decoder converting network bytes to float64s
// a block at a time. The zero Accumulator is usable; Grow pre-sizes it
// when the producer knows the final length (length-prefixed wire formats
// do), drawing the backing from the shared buffer pool.
type Accumulator struct {
	vals []float64
}

// Grow ensures capacity for n total elements, preserving accumulated data.
func (a *Accumulator) Grow(n int) {
	if cap(a.vals) >= n {
		return
	}
	next := GetBuffer(n)
	next = append(next, a.vals...)
	PutBuffer(a.vals)
	a.vals = next
}

// ensure makes room for n more values, doubling through the pool — a
// plain append would abandon the pooled backing for GC-owned doublings
// once a producer outgrows its pre-allocation.
func (a *Accumulator) ensure(n int) {
	need := len(a.vals) + n
	if need <= cap(a.vals) {
		return
	}
	target := 2 * cap(a.vals)
	if target < need {
		target = need
	}
	a.Grow(target)
}

// Append feeds one chunk of decoded values.
func (a *Accumulator) Append(chunk []float64) {
	a.ensure(len(chunk))
	a.vals = append(a.vals, chunk...)
}

// AppendOne feeds a single decoded value.
func (a *Accumulator) AppendOne(v float64) {
	a.ensure(1)
	a.vals = append(a.vals, v)
}

// Len returns the number of accumulated values.
func (a *Accumulator) Len() int { return len(a.vals) }

// Finish hands over the accumulated slice and resets the accumulator. The
// caller owns the slice (and should PutBuffer it when the input's lifetime
// ends — the serving runtime does, via its codec release path).
func (a *Accumulator) Finish() []float64 {
	out := a.vals
	a.vals = nil
	if out == nil {
		out = []float64{}
	}
	return out
}

// Raw byte blocks get the same treatment as float64 buffers: the wire
// layer reads whole request bodies (binary frames the fleet router
// fingerprints in place, JSON envelopes it normalizes) before any
// decoding, and per-request io.ReadAll growth was the one allocation left
// on that path. Classes are powers of two from 512 B to 16 MB; requests
// outside fall back to plain allocation.
const (
	minBytePoolShift = 9
	maxBytePoolShift = 24
)

// bytePools[i] holds []byte slices with capacity 1<<(minBytePoolShift+i).
var bytePools = func() []*sync.Pool {
	ps := make([]*sync.Pool, maxBytePoolShift-minBytePoolShift+1)
	for i := range ps {
		ps[i] = &sync.Pool{}
	}
	return ps
}()

// GetBytes returns a zero-length byte slice with capacity at least
// capacityHint, drawn from a size-classed pool when possible.
func GetBytes(capacityHint int) []byte {
	if capacityHint < 0 {
		capacityHint = 0
	}
	cls := -1
	for i := 0; i <= maxBytePoolShift-minBytePoolShift; i++ {
		if capacityHint <= 1<<(minBytePoolShift+i) {
			cls = i
			break
		}
	}
	if cls < 0 {
		return make([]byte, 0, capacityHint)
	}
	if v := bytePools[cls].Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1<<(minBytePoolShift+cls))
}

// PutBytes returns a buffer obtained from GetBytes (or anywhere else) to
// the pool. The caller must not touch buf afterwards. Small or oversized
// buffers are dropped for the garbage collector.
func PutBytes(buf []byte) {
	c := cap(buf)
	if c < 1<<minBytePoolShift {
		return
	}
	cls := -1
	for i := maxBytePoolShift - minBytePoolShift; i >= 0; i-- {
		if c >= 1<<(minBytePoolShift+i) {
			cls = i
			break
		}
	}
	if cls < 0 {
		return
	}
	bytePools[cls].Put(buf[:0])
}
