package feature

// This file is the incremental side of feature extraction: wire decoders
// assemble an input's numeric payload chunk by chunk into pooled buffers
// (Accumulator), and the completed buffer becomes the input's backing array
// with no second materialization. Extraction itself then runs through the
// one shared routine (Set.extractOne), so a streamed request computes
// bit-identical feature values to an offline, fully materialized one.

// Buffer size classes are powers of two from 1<<minPoolShift to
// 1<<maxPoolShift float64s (256 .. 2M elements, 2 KB .. 16 MB). Requests
// outside the classes fall back to plain allocation.
const (
	minPoolShift = 8
	maxPoolShift = 21
)

// bufPool holds []float64 slices in classes 1<<minPoolShift .. 1<<maxPoolShift.
var bufPool = NewSlicePool[float64](minPoolShift, maxPoolShift)

// GetBuffer returns a zero-length float64 slice with capacity at least
// capacityHint, drawn from a size-classed pool when possible. The slice's
// contents beyond its length are unspecified; callers append into it.
func GetBuffer(capacityHint int) []float64 { return bufPool.Get(capacityHint) }

// PutBuffer returns a buffer obtained from GetBuffer (or anywhere else) to
// the pool. The caller must not touch buf afterwards: a later GetBuffer
// may hand the same backing array to another goroutine. Small or oversized
// buffers are dropped for the garbage collector.
func PutBuffer(buf []float64) { bufPool.Put(buf) }

// Accumulator assembles one vector field of an input from a chunked
// producer — typically a wire decoder converting network bytes to float64s
// a block at a time. The zero Accumulator is usable; Grow pre-sizes it
// when the producer knows the final length (length-prefixed wire formats
// do), drawing the backing from the shared buffer pool.
type Accumulator struct {
	vals []float64
}

// Grow ensures capacity for n total elements, preserving accumulated data.
func (a *Accumulator) Grow(n int) {
	if cap(a.vals) >= n {
		return
	}
	next := GetBuffer(n)
	next = append(next, a.vals...)
	PutBuffer(a.vals)
	a.vals = next
}

// ensure makes room for n more values, doubling through the pool — a
// plain append would abandon the pooled backing for GC-owned doublings
// once a producer outgrows its pre-allocation.
func (a *Accumulator) ensure(n int) {
	need := len(a.vals) + n
	if need <= cap(a.vals) {
		return
	}
	target := 2 * cap(a.vals)
	if target < need {
		target = need
	}
	a.Grow(target)
}

// Append feeds one chunk of decoded values.
func (a *Accumulator) Append(chunk []float64) {
	a.ensure(len(chunk))
	a.vals = append(a.vals, chunk...)
}

// AppendOne feeds a single decoded value.
func (a *Accumulator) AppendOne(v float64) {
	a.ensure(1)
	a.vals = append(a.vals, v)
}

// Len returns the number of accumulated values.
func (a *Accumulator) Len() int { return len(a.vals) }

// Finish hands over the accumulated slice and resets the accumulator. The
// caller owns the slice (and should PutBuffer it when the input's lifetime
// ends — the serving runtime does, via its codec release path).
func (a *Accumulator) Finish() []float64 {
	out := a.vals
	a.vals = nil
	if out == nil {
		out = []float64{}
	}
	return out
}

// Raw byte blocks get the same treatment as float64 buffers: the wire
// layer reads whole request bodies (binary frames the fleet router
// fingerprints in place, JSON envelopes it normalizes) before any
// decoding, and per-request io.ReadAll growth was the one allocation left
// on that path. Classes are powers of two from 512 B to 16 MB; requests
// outside fall back to plain allocation.
const (
	minBytePoolShift = 9
	maxBytePoolShift = 24
)

// bytePool holds []byte slices in classes 1<<minBytePoolShift .. 1<<maxBytePoolShift.
var bytePool = NewSlicePool[byte](minBytePoolShift, maxBytePoolShift)

// GetBytes returns a zero-length byte slice with capacity at least
// capacityHint, drawn from a size-classed pool when possible.
func GetBytes(capacityHint int) []byte { return bytePool.Get(capacityHint) }

// PutBytes returns a buffer obtained from GetBytes (or anywhere else) to
// the pool. The caller must not touch buf afterwards. Small or oversized
// buffers are dropped for the garbage collector.
func PutBytes(buf []byte) { bytePool.Put(buf) }
