package feature

import (
	"testing"

	"inputtune/internal/cost"
)

func TestAccumulatorChunksMatchWhole(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i) * 1.25
	}
	var acc Accumulator
	acc.Grow(len(vals))
	for i := 0; i < len(vals); i += 37 {
		end := i + 37
		if end > len(vals) {
			end = len(vals)
		}
		acc.Append(vals[i:end])
	}
	got := acc.Finish()
	if len(got) != len(vals) {
		t.Fatalf("accumulated %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
	if acc.Len() != 0 {
		t.Fatalf("Finish did not reset the accumulator")
	}
	PutBuffer(got)
}

// TestAccumulatorOutgrowsPreAllocation feeds far more values than the
// initial Grow reserved — the lying-length-prefix defence path — and
// checks the data survives the pooled re-growths intact.
func TestAccumulatorOutgrowsPreAllocation(t *testing.T) {
	var acc Accumulator
	acc.Grow(64)
	const n = 100_000
	for i := 0; i < n; i++ {
		acc.AppendOne(float64(i) * 0.5)
	}
	got := acc.Finish()
	if len(got) != n {
		t.Fatalf("accumulated %d values, want %d", len(got), n)
	}
	for i := 0; i < n; i += 997 {
		if got[i] != float64(i)*0.5 {
			t.Fatalf("value %d corrupted across growth: %v", i, got[i])
		}
	}
	PutBuffer(got)
}

func TestAccumulatorAppendOneAndEmptyFinish(t *testing.T) {
	var acc Accumulator
	acc.AppendOne(3.5)
	acc.AppendOne(-1)
	got := acc.Finish()
	if len(got) != 2 || got[0] != 3.5 || got[1] != -1 {
		t.Fatalf("AppendOne sequence wrong: %v", got)
	}
	var empty Accumulator
	if out := empty.Finish(); out == nil || len(out) != 0 {
		t.Fatalf("empty Finish should return a non-nil empty slice, got %v", out)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 5000, 1 << 21, 1<<21 + 1} {
		buf := GetBuffer(n)
		if len(buf) != 0 {
			t.Fatalf("GetBuffer(%d) returned non-empty slice", n)
		}
		if cap(buf) < n {
			t.Fatalf("GetBuffer(%d) capacity %d too small", n, cap(buf))
		}
		PutBuffer(buf)
	}
	// A recycled buffer must satisfy its class capacity again.
	a := GetBuffer(1024)
	PutBuffer(a)
	b := GetBuffer(1024)
	if cap(b) < 1024 {
		t.Fatalf("recycled buffer capacity %d < 1024", cap(b))
	}
}

func TestBytePoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 70_000, 1 << 24, 1<<24 + 1} {
		buf := GetBytes(n)
		if len(buf) != 0 {
			t.Fatalf("GetBytes(%d) returned non-empty slice", n)
		}
		if cap(buf) < n {
			t.Fatalf("GetBytes(%d) capacity %d too small", n, cap(buf))
		}
		PutBytes(buf)
	}
	// A recycled block must satisfy its class capacity again.
	a := GetBytes(4096)
	PutBytes(a)
	b := GetBytes(4096)
	if cap(b) < 4096 {
		t.Fatalf("recycled block capacity %d < 4096", cap(b))
	}
}

// TestExtractSubsetIntoMatchesExtractSubset pins the pooled-row serving
// entry point to the allocating one, including the zeroing of unlisted
// entries when a dirty row is reused.
func TestExtractSubsetIntoMatchesExtractSubset(t *testing.T) {
	set := makeSet()
	in := sliceInput{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	indices := []int{set.Index(0, 1), set.Index(1, 2)}
	want := set.ExtractSubset(in, indices, nil)

	dst := make([]float64, set.NumFeatures())
	for i := range dst {
		dst[i] = 99 // dirt that must be cleared
	}
	m1 := cost.NewMeter()
	m2 := cost.NewMeter()
	set.ExtractSubset(in, indices, m1)
	got := set.ExtractSubsetInto(dst, in, indices, m2)
	for f := range want {
		if got[f] != want[f] {
			t.Fatalf("feature %d: into=%v subset=%v", f, got[f], want[f])
		}
	}
	if m1.Elapsed() != m2.Elapsed() {
		t.Fatalf("meters diverged: %v vs %v", m1.Elapsed(), m2.Elapsed())
	}
}
