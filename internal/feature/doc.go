// Package feature reproduces the paper's input_feature language extension:
// programmer-defined feature extractors, each available at z sampling
// levels of increasing cost and fidelity (the paper's `level` tunable with
// z = 3 in the evaluation). Extraction work is charged to a cost.Meter so
// the learner can weigh a feature's usefulness against the runtime overhead
// of computing it — one of the paper's three core challenges ("Costly
// Features").
//
// A Set is a program's full feature battery: u properties × z levels =
// M = u·z flat features. The classifier zoo enumerates per-property level
// selections as Subset values ((z+1)^u of them, the empty subset
// included), and deployment extracts only the subset the production
// classifier actually needs via ExtractSubset.
package feature
