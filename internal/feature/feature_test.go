package feature

import (
	"testing"

	"inputtune/internal/cost"
)

type sliceInput []float64

func (s sliceInput) Size() int { return len(s) }

// makeSet builds a 2-property, 3-level set: "sum" and "max", where higher
// levels scan more of the input (and charge more).
func makeSet() *Set {
	scanFrac := []float64{0.1, 0.5, 1.0}
	level := func(prop string, frac float64) LevelFunc {
		return func(in Input, m *cost.Meter) float64 {
			xs := in.(sliceInput)
			n := int(frac * float64(len(xs)))
			if n < 1 {
				n = 1
			}
			m.Charge(cost.Scan, n)
			switch prop {
			case "sum":
				s := 0.0
				for _, v := range xs[:n] {
					s += v
				}
				return s
			default: // max
				mx := xs[0]
				for _, v := range xs[:n] {
					if v > mx {
						mx = v
					}
				}
				return mx
			}
		}
	}
	var sumL, maxL []LevelFunc
	for _, f := range scanFrac {
		sumL = append(sumL, level("sum", f))
		maxL = append(maxL, level("max", f))
	}
	return MustNewSet(
		Extractor{Name: "sum", Levels: sumL},
		Extractor{Name: "max", Levels: maxL},
	)
}

func TestSetShape(t *testing.T) {
	s := makeSet()
	if s.NumProperties() != 2 || s.LevelsPerProperty() != 3 || s.NumFeatures() != 6 {
		t.Fatalf("shape = (%d, %d, %d)", s.NumProperties(), s.LevelsPerProperty(), s.NumFeatures())
	}
	if name := s.FeatureName(4); name != "max@1" {
		t.Fatalf("FeatureName(4) = %q", name)
	}
	if idx := s.Index(1, 2); idx != 5 {
		t.Fatalf("Index(1,2) = %d", idx)
	}
}

func TestNewSetRejectsRaggedLevels(t *testing.T) {
	noop := func(Input, *cost.Meter) float64 { return 0 }
	_, err := NewSet(
		Extractor{Name: "a", Levels: []LevelFunc{noop, noop}},
		Extractor{Name: "b", Levels: []LevelFunc{noop}},
	)
	if err == nil {
		t.Fatal("ragged levels accepted")
	}
	if _, err := NewSet(); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSet(Extractor{Name: "z"}); err == nil {
		t.Fatal("zero-level extractor accepted")
	}
}

func TestExtractAllValuesAndCosts(t *testing.T) {
	s := makeSet()
	in := sliceInput{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	vals, costs := s.ExtractAll(in)
	// sum@2 (full scan) = 55, max@2 = 10.
	if vals[s.Index(0, 2)] != 55 {
		t.Fatalf("sum@2 = %v", vals[s.Index(0, 2)])
	}
	if vals[s.Index(1, 2)] != 10 {
		t.Fatalf("max@2 = %v", vals[s.Index(1, 2)])
	}
	// Costs must increase with level.
	for p := 0; p < 2; p++ {
		for l := 1; l < 3; l++ {
			if costs[s.Index(p, l)] <= costs[s.Index(p, l-1)] {
				t.Fatalf("cost of level %d not above level %d: %v", l, l-1, costs)
			}
		}
	}
}

func TestExtractSubsetChargesOnlySelected(t *testing.T) {
	s := makeSet()
	in := sliceInput{5, 4, 3, 2, 1, 0, 0, 0, 0, 0}
	m := cost.NewMeter()
	idx := []int{s.Index(0, 0)} // sum@0: scans 1 element
	vals := s.ExtractSubset(in, idx, m)
	if vals[s.Index(0, 0)] != 5 {
		t.Fatalf("sum@0 = %v", vals[s.Index(0, 0)])
	}
	if m.Count(cost.Scan) != 1 {
		t.Fatalf("scanned %d elements, want 1", m.Count(cost.Scan))
	}
	// Unselected slots are zero.
	if vals[s.Index(1, 2)] != 0 {
		t.Fatal("unselected feature populated")
	}
	// Nil meter is allowed.
	_ = s.ExtractSubset(in, idx, nil)
}

func TestEnumerateSubsets(t *testing.T) {
	subsets := EnumerateSubsets(2, 3)
	if len(subsets) != 16 { // (3+1)^2
		t.Fatalf("got %d subsets, want 16", len(subsets))
	}
	// First is empty, last is all-top-level.
	if !subsets[0].Empty() {
		t.Fatalf("first subset not empty: %v", subsets[0])
	}
	last := subsets[len(subsets)-1]
	if last[0] != 2 || last[1] != 2 {
		t.Fatalf("last subset = %v", last)
	}
	// All unique.
	seen := map[string]bool{}
	for _, ss := range subsets {
		k := ss.String()
		if seen[k] {
			t.Fatalf("duplicate subset %v", ss)
		}
		seen[k] = true
	}
	// 4 properties at 3 levels — the paper's "44 unique subsets ... 256".
	if n := len(EnumerateSubsets(4, 3)); n != 256 {
		t.Fatalf("4 props x 3 levels = %d subsets, want 256", n)
	}
}

func TestSubsetIndices(t *testing.T) {
	ss := Subset{-1, 1}
	idx := ss.Indices(3)
	if len(idx) != 1 || idx[0] != 4 {
		t.Fatalf("Indices = %v", idx)
	}
	if Subset([]int{-1, -1}).Indices(3) != nil {
		t.Fatal("empty subset should have nil indices")
	}
}

func TestDescribe(t *testing.T) {
	s := makeSet()
	desc := s.Describe(Subset{0, 2})
	if desc != "{sum@0, max@2}" {
		t.Fatalf("Describe = %q", desc)
	}
	if d := s.Describe(Subset{-1, -1}); d != "{}" {
		t.Fatalf("empty Describe = %q", d)
	}
}
