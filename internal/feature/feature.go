package feature

import (
	"fmt"

	"inputtune/internal/cost"
)

// Input is the minimal view of a program input the framework needs; the
// concrete type is benchmark-specific.
type Input interface {
	// Size returns the problem size (list length, matrix elements, grid
	// points); selectors and extraction-cost accounting key off it.
	Size() int
}

// LevelFunc computes one feature at one sampling level, charging its
// analysis work (typically cost.Scan per element touched) to m. It must be
// deterministic and side-effect free, mirroring the paper's requirement
// that feature extractors have no side effects.
type LevelFunc func(in Input, m *cost.Meter) float64

// Extractor is one input property with its ladder of sampling levels,
// cheapest first.
type Extractor struct {
	Name   string
	Levels []LevelFunc
}

// Set is the full feature battery of a program: u properties, each at z
// levels, for M = u*z features total. All extractors must share the same z.
type Set struct {
	Extractors []Extractor
	z          int
}

// NewSet validates that all extractors have the same number of levels and
// returns the assembled set.
func NewSet(extractors ...Extractor) (*Set, error) {
	if len(extractors) == 0 {
		return nil, fmt.Errorf("feature: empty extractor set")
	}
	z := len(extractors[0].Levels)
	if z == 0 {
		return nil, fmt.Errorf("feature: extractor %q has no levels", extractors[0].Name)
	}
	for _, e := range extractors[1:] {
		if len(e.Levels) != z {
			return nil, fmt.Errorf("feature: extractor %q has %d levels, want %d", e.Name, len(e.Levels), z)
		}
	}
	return &Set{Extractors: extractors, z: z}, nil
}

// MustNewSet is NewSet that panics on error; for package-level benchmark
// definitions whose shape is static.
func MustNewSet(extractors ...Extractor) *Set {
	s, err := NewSet(extractors...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumProperties returns u.
func (s *Set) NumProperties() int { return len(s.Extractors) }

// LevelsPerProperty returns z.
func (s *Set) LevelsPerProperty() int { return s.z }

// NumFeatures returns M = u*z.
func (s *Set) NumFeatures() int { return len(s.Extractors) * s.z }

// FeatureName returns a stable name for flat feature index f, e.g.
// "sortedness@1" for property "sortedness" at level 1.
func (s *Set) FeatureName(f int) string {
	p, l := f/s.z, f%s.z
	return fmt.Sprintf("%s@%d", s.Extractors[p].Name, l)
}

// Index returns the flat feature index of (property, level).
func (s *Set) Index(property, level int) int { return property*s.z + level }

// extractOne computes feature f on in, charging its work to m. It is THE
// single extraction routine: every caller — the training-side Dataset
// builder (ExtractAll), offline inference and the serving runtime
// (ExtractSubset / ExtractSubsetInto) — lands here, so the feature bits a
// deployed classifier sees are bit-identical to the ones it was trained on
// by construction, not by parallel-implementation discipline.
func (s *Set) extractOne(f int, in Input, m *cost.Meter) float64 {
	return s.Extractors[f/s.z].Levels[f%s.z](in, m)
}

// ExtractAll computes every feature of in, returning the M-vector of values
// and the M-vector of per-feature extraction costs in virtual time units.
func (s *Set) ExtractAll(in Input) (vals, costs []float64) {
	M := s.NumFeatures()
	vals = make([]float64, M)
	costs = make([]float64, M)
	for f := 0; f < M; f++ {
		m := cost.NewMeter()
		vals[f] = s.extractOne(f, in, m)
		costs[f] = m.Elapsed()
	}
	return vals, costs
}

// ExtractSubset computes only the features listed in indices, charging
// their combined cost to meter (which may be nil). Unlisted entries of the
// returned vector are zero; callers use the same indices to slice it.
func (s *Set) ExtractSubset(in Input, indices []int, meter *cost.Meter) []float64 {
	return s.ExtractSubsetInto(make([]float64, s.NumFeatures()), in, indices, meter)
}

// ExtractSubsetInto is ExtractSubset writing into a caller-provided row of
// length NumFeatures (the serving runtime passes pooled rows so the hot
// request path allocates nothing here). dst is zeroed first; the same
// values land in it that ExtractSubset would return.
func (s *Set) ExtractSubsetInto(dst []float64, in Input, indices []int, meter *cost.Meter) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	m := meter
	if m == nil {
		m = cost.NewMeter()
	}
	for _, f := range indices {
		dst[f] = s.extractOne(f, in, m)
	}
	return dst
}

// Subset encodes a per-property level selection: entry p is the chosen
// sampling level for property p, or -1 if the property is not used. This is
// the unit the exhaustive feature-subset classifiers enumerate: for u
// properties at z levels there are (z+1)^u subsets.
type Subset []int

// EnumerateSubsets returns all (z+1)^u subsets for u properties at z
// levels, in lexicographic order starting from the empty subset.
func EnumerateSubsets(u, z int) []Subset {
	total := 1
	for i := 0; i < u; i++ {
		total *= z + 1
	}
	out := make([]Subset, 0, total)
	cur := make(Subset, u)
	for i := range cur {
		cur[i] = -1
	}
	for {
		out = append(out, append(Subset(nil), cur...))
		// Increment mixed-radix counter with digits in {-1, 0, .., z-1}.
		i := u - 1
		for i >= 0 {
			cur[i]++
			if cur[i] < z {
				break
			}
			cur[i] = -1
			i--
		}
		if i < 0 {
			break
		}
	}
	return out
}

// Indices converts the subset to flat feature indices.
func (ss Subset) Indices(z int) []int {
	var out []int
	for p, l := range ss {
		if l >= 0 {
			out = append(out, p*z+l)
		}
	}
	return out
}

// Empty reports whether no property is selected.
func (ss Subset) Empty() bool {
	for _, l := range ss {
		if l >= 0 {
			return false
		}
	}
	return true
}

// String renders the subset like "{sortedness@1, deviation@0}".
func (ss Subset) String() string {
	return fmt.Sprintf("%v", []int(ss))
}

// Describe renders the subset with property names from the set.
func (s *Set) Describe(ss Subset) string {
	out := "{"
	first := true
	for p, l := range ss {
		if l < 0 {
			continue
		}
		if !first {
			out += ", "
		}
		first = false
		out += fmt.Sprintf("%s@%d", s.Extractors[p].Name, l)
	}
	return out + "}"
}
