package feature

import "sync"

// SlicePool recycles []T backing arrays across goroutines in power-of-two
// size classes from 1<<minShift to 1<<maxShift elements. It generalizes
// the float64 and byte pools this package has carried since PR 5 so new
// hot-path consumers (the tracer's span buffers, the fleet's frame
// wrapping) share one implementation instead of a third hand-rolled copy.
//
// Get returns a zero-length slice with at least the hinted capacity;
// requests above the largest class fall back to plain allocation. Put
// files a slice under the largest class its capacity fully covers, so a
// pooled slice always satisfies its class's capacity promise; slices
// smaller than the smallest class are dropped for the garbage collector.
type SlicePool[T any] struct {
	pools    []*sync.Pool
	minShift int
}

// NewSlicePool builds a pool with size classes 1<<minShift .. 1<<maxShift.
func NewSlicePool[T any](minShift, maxShift int) *SlicePool[T] {
	if minShift < 0 || maxShift < minShift {
		panic("feature: invalid SlicePool shifts")
	}
	ps := make([]*sync.Pool, maxShift-minShift+1)
	for i := range ps {
		ps[i] = &sync.Pool{}
	}
	return &SlicePool[T]{pools: ps, minShift: minShift}
}

// classFor returns the index of the smallest class holding n elements, or
// -1 when n exceeds the largest class.
func (p *SlicePool[T]) classFor(n int) int {
	for i := 0; i < len(p.pools); i++ {
		if n <= 1<<(p.minShift+i) {
			return i
		}
	}
	return -1
}

// Get returns a zero-length slice with capacity at least capacityHint,
// drawn from a size-classed pool when possible. Contents beyond the
// length are unspecified; callers append into it.
func (p *SlicePool[T]) Get(capacityHint int) []T {
	if capacityHint < 0 {
		capacityHint = 0
	}
	cls := p.classFor(capacityHint)
	if cls < 0 {
		return make([]T, 0, capacityHint)
	}
	if v := p.pools[cls].Get(); v != nil {
		return v.([]T)[:0]
	}
	return make([]T, 0, 1<<(p.minShift+cls))
}

// Put returns a slice obtained from Get (or anywhere else) to the pool.
// The caller must not touch s afterwards: a later Get may hand the same
// backing array to another goroutine.
func (p *SlicePool[T]) Put(s []T) {
	c := cap(s)
	if c < 1<<p.minShift {
		return
	}
	// File under the largest class the capacity fully covers.
	cls := -1
	for i := len(p.pools) - 1; i >= 0; i-- {
		if c >= 1<<(p.minShift+i) {
			cls = i
			break
		}
	}
	if cls < 0 {
		return
	}
	p.pools[cls].Put(s[:0])
}
