// Package inputtune is a from-scratch Go reproduction of "Autotuning
// Algorithmic Choice for Input Sensitivity" (Ding, Ansel, Veeramachaneni,
// Shen, O'Reilly, Amarasinghe — PLDI 2015).
//
// It provides a PetaBricks-style algorithmic-choice runtime (either…or
// choice sites decided by size-threshold selectors, scalar tunables, and
// input_feature extractors with sampling levels), an evolutionary
// autotuner, and the paper's contribution: a two-level input-learning
// framework that clusters training inputs, autotunes one landmark
// configuration per cluster, relabels inputs by their best landmark, and
// selects a production classifier that balances execution time, accuracy
// and feature-extraction cost.
//
// # Quick start
//
// Implement inputtune.Program for your computation (see
// internal/benchmarks for six complete examples), generate training
// inputs, and train:
//
//	model := inputtune.Train(prog, inputs, inputtune.Options{K1: 16, Seed: 1})
//	meter := inputtune.NewMeter()
//	landmark, accuracy := model.Run(newInput, meter)
//
// The examples/ directory contains runnable end-to-end programs and
// cmd/experiments regenerates every table and figure of the paper.
package inputtune

import (
	"io"

	"inputtune/internal/choice"
	"inputtune/internal/core"
	"inputtune/internal/cost"
	"inputtune/internal/feature"
)

// Program is the contract a tunable computation implements; see
// core.Program for the full documentation of each method.
type Program = core.Program

// Input is an opaque program input exposing its problem size.
type Input = feature.Input

// Options configures two-level training.
type Options = core.Options

// Model is a trained, deployable input-adaptive program.
type Model = core.Model

// Report carries training diagnostics.
type Report = core.Report

// Decision is the outcome of one production inference: the selected
// landmark, its configuration, and the feature-extraction cost incurred.
// Produced by Model.Infer, the race-safe inference entry point.
type Decision = core.Decision

// Space describes a program's configuration search space.
type Space = choice.Space

// Config is one point in a configuration space.
type Config = choice.Config

// Selector is a PetaBricks-style size-threshold decision list.
type Selector = choice.Selector

// FeatureSet is a battery of input_feature extractors.
type FeatureSet = feature.Set

// Extractor is one input property with its ladder of sampling levels.
type Extractor = feature.Extractor

// LevelFunc computes one feature at one sampling level.
type LevelFunc = feature.LevelFunc

// Meter accumulates virtual execution time.
type Meter = cost.Meter

// NewSpace returns an empty configuration space with default limits.
func NewSpace() *Space { return choice.NewSpace() }

// NewMeter returns a fresh virtual-time meter with default op weights.
func NewMeter() *Meter { return cost.NewMeter() }

// NewFeatureSet assembles extractors into a feature set, enforcing a
// uniform number of sampling levels.
func NewFeatureSet(extractors ...Extractor) (*FeatureSet, error) {
	return feature.NewSet(extractors...)
}

// Train runs the full two-level learning pipeline of the paper on the
// given training inputs and returns a deployable model.
func Train(prog Program, inputs []Input, opts Options) *Model {
	return core.TrainModel(prog, inputs, opts)
}

// Measure runs prog once under cfg and returns (virtual time, accuracy).
func Measure(prog Program, cfg *Config, in Input) (float64, float64) {
	return core.Measure(prog, cfg, in)
}

// SaveModel serialises a trained model's deployable parts (landmarks and
// production classifier) as JSON.
func SaveModel(m *Model, w io.Writer) error { return core.SaveModel(m, w) }

// LoadModel restores a model saved with SaveModel, binding it to prog
// (which must be the same benchmark with an identical configuration
// space).
func LoadModel(prog Program, r io.Reader) (*Model, error) { return core.LoadModel(prog, r) }
