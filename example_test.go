package inputtune_test

import (
	"bytes"
	"fmt"

	"inputtune"
	"inputtune/internal/benchmarks/poisson2d"
	"inputtune/internal/benchmarks/sortbench"
)

// Example_quickstart is the package-comment and README quickstart as a
// verified godoc example: implement Program (here the sort benchmark),
// generate training inputs, train the two-level model, and deploy it on a
// fresh input. Everything is deterministic per seed, so the output below is
// checked by `go test`.
func Example_quickstart() {
	prog := sortbench.New()
	var train []inputtune.Input
	for _, l := range sortbench.GenerateMix(sortbench.MixOptions{Count: 60, Seed: 1, MaxSize: 512}) {
		train = append(train, l)
	}
	model := inputtune.Train(prog, train, inputtune.Options{
		K1: 6, Seed: 2, TunerPopulation: 8, TunerGenerations: 6, Parallel: true,
	})

	fresh := sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 99, MaxSize: 512})[0]
	meter := inputtune.NewMeter()
	landmark, accuracy := model.Run(fresh, meter)

	fmt.Printf("landmarks tuned: %d\n", len(model.Landmarks))
	fmt.Printf("landmark in range: %v\n", landmark >= 0 && landmark < len(model.Landmarks))
	fmt.Printf("sorted correctly: %v\n", accuracy == 1)
	fmt.Printf("work was metered: %v\n", meter.Elapsed() > 0)
	// Output:
	// landmarks tuned: 6
	// landmark in range: true
	// sorted correctly: true
	// work was metered: true
}

// ExampleSaveModel shows the train-once / deploy-many workflow: a trained
// model serialises to JSON, and LoadModel re-binds the artifact to the
// program so deployment never repeats the (at paper scale, hours-long)
// training run.
func ExampleSaveModel() {
	prog := sortbench.New()
	var train []inputtune.Input
	for _, l := range sortbench.GenerateMix(sortbench.MixOptions{Count: 60, Seed: 1, MaxSize: 512}) {
		train = append(train, l)
	}
	model := inputtune.Train(prog, train, inputtune.Options{
		K1: 4, Seed: 7, TunerPopulation: 8, TunerGenerations: 6, Parallel: true,
	})

	var artifact bytes.Buffer
	if err := inputtune.SaveModel(model, &artifact); err != nil {
		fmt.Println("save:", err)
		return
	}
	loaded, err := inputtune.LoadModel(sortbench.New(), &artifact)
	if err != nil {
		fmt.Println("load:", err)
		return
	}

	in := sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 123, MaxSize: 512})[0]
	fmt.Printf("same classifier: %v\n", loaded.Production.Name == model.Production.Name)
	fmt.Printf("same decision: %v\n", loaded.Classify(in, nil) == model.Classify(in, nil))
	// Output:
	// same classifier: true
	// same decision: true
}

// ExampleTrain_poisson2d exercises the variable-accuracy PDE path of the
// public API: train the Poisson 2D benchmark at a small scale, persist
// the model, and let the LOADED model classify and solve a fresh input —
// the train-once / deploy-many loop for a benchmark where the dispatcher
// must respect an accuracy threshold (7 decades of error reduction), not
// just execution time. Deterministic per seed, so `go test` checks the
// output.
func ExampleTrain_poisson2d() {
	prog := poisson2d.New()
	var train []inputtune.Input
	for _, pr := range poisson2d.GenerateMix(poisson2d.MixOptions{Count: 12, Seed: 3, Sizes: []int{15, 31}}) {
		train = append(train, pr)
	}
	model := inputtune.Train(prog, train, inputtune.Options{
		K1: 4, Seed: 11, TunerPopulation: 8, TunerGenerations: 5, Parallel: true,
	})

	var artifact bytes.Buffer
	if err := inputtune.SaveModel(model, &artifact); err != nil {
		fmt.Println("save:", err)
		return
	}
	loaded, err := inputtune.LoadModel(poisson2d.New(), &artifact)
	if err != nil {
		fmt.Println("load:", err)
		return
	}

	fresh := poisson2d.GenerateMix(poisson2d.MixOptions{Count: 1, Seed: 77, Sizes: []int{31}})[0]
	meter := inputtune.NewMeter()
	landmark, accuracy := loaded.Run(fresh, meter)

	fmt.Printf("landmarks tuned: %d\n", len(loaded.Landmarks))
	fmt.Printf("same decision as unsaved model: %v\n", landmark == model.Classify(fresh, nil))
	fmt.Printf("meets accuracy target: %v\n", accuracy >= prog.AccuracyThreshold())
	fmt.Printf("work was metered: %v\n", meter.Elapsed() > 0)
	// Output:
	// landmarks tuned: 5
	// same decision as unsaved model: true
	// meets accuracy target: true
	// work was metered: true
}

// ExampleMeasure runs a program once under an explicit configuration — the
// building block the autotuner and the landmark measurement pass share.
func ExampleMeasure() {
	prog := sortbench.New()
	in := sortbench.GenerateMix(sortbench.MixOptions{Count: 1, Seed: 5, MaxSize: 256})[0]
	elapsed, accuracy := inputtune.Measure(prog, prog.Space().DefaultConfig(), in)
	fmt.Printf("charged work: %v\n", elapsed > 0)
	fmt.Printf("accuracy: %.0f\n", accuracy)
	// Output:
	// charged work: true
	// accuracy: 1
}
