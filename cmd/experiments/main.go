// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments table1               Table 1 (all 8 tests)
//	experiments table1 -case sort2   Table 1 (one test)
//	experiments fig6                 Figure 6 per-input speedup distributions
//	experiments fig7                 Figure 7 theoretical model curves
//	experiments fig8                 Figure 8 speedup vs #landmarks
//	experiments ablation             §3.1 K-means vs random landmark ablation
//	experiments bench                perf trajectory: wall-clock, per-phase
//	                                 training breakdown, evaluations, cache
//	                                 hit-rate per benchmark (BENCH_1.json)
//	experiments serve-bench          serving-side trajectory: train, serve
//	                                 over loopback HTTP, drive with
//	                                 concurrent clients + hot reloads —
//	                                 one arm per wire format (the JSON vs
//	                                 binary A/B) — and merge throughput/
//	                                 p50/p99/allocs into the bench JSON's
//	                                 "serve" section
//	experiments cluster-bench        multi-replica fleet arm: stand up a
//	                                 replicas x clients grid behind the
//	                                 consistent-hash router, kill and
//	                                 restart a replica mid-run (zero failed
//	                                 requests enforced), and merge scaling,
//	                                 fault counters and per-replica cache
//	                                 stats into the bench JSON's "fleet"
//	                                 section
//	experiments drift-bench          online-adaptivity arm: serve
//	                                 in-distribution traffic, shift the
//	                                 live input distribution mid-run, and
//	                                 require the drift detector to fire, a
//	                                 background retrain to hot-publish with
//	                                 zero failed requests, and decision
//	                                 quality to recover; merges phase
//	                                 latency/quality into the bench JSON's
//	                                 "drift" section
//	experiments classify             wire-level client for a running
//	                                 inputtuned: encode -data in -wire
//	                                 json|binary and POST /v1/classify
//	                                 (the binary frame's curl)
//	experiments all                  everything above except bench
//
// Use -scale quick|default to trade fidelity for runtime, -out DIR to also
// write CSV files, and -v for training progress. `bench -json FILE`
// selects the JSON output path (default: the gitignored BENCH_latest.json;
// pass BENCH_<pr>.json to extend the committed trajectory); `bench
// -nocache` measures the engine's cache-disabled escape hatch for A/B
// comparison.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"inputtune/internal/benchmarks/binpack"
	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/core"
	"inputtune/internal/exp"
	"inputtune/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scaleName := fs.String("scale", "default", "workload scale: quick or default")
	caseName := fs.String("case", "", "run a single test (e.g. sort2); empty = all")
	outDir := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 0, "override RNG seed (0 = scale default)")
	verbose := fs.Bool("v", false, "log training progress")
	benchJSON := fs.String("json", "", "bench: output path for the JSON report (default BENCH_1.json, or BENCH_1.nocache.json with -nocache)")
	noCache := fs.Bool("nocache", false, "disable the measurement cache (A/B escape hatch; any subcommand)")
	flatTuner := fs.Bool("flat-tuner", false, "revert to the flat single-run GA (dependency-aware A/B baseline; any training subcommand)")
	clients := fs.Int("clients", 8, "serve-bench: concurrent load-generator clients")
	requests := fs.Int("requests", 2000, "serve-bench: total requests per case and wire")
	reloads := fs.Int("reloads", 2, "serve-bench: hot reloads fired mid-run")
	traceArm := fs.Bool("trace-arm", true, "serve-bench: add a fully-traced binary arm recording tracing's overhead delta")
	wire := fs.String("wire", "both", "serve-bench: wire formats to drive (json, binary, or both); classify: request format")
	replicasFlag := fs.String("replicas", "1,2,4", "cluster-bench: comma-separated fleet-size grid")
	kill := fs.Bool("kill", true, "cluster-bench: inject a replica kill+restart mid-run on multi-replica arms")
	shardQuantize := fs.Int("shard-quantize", 8, "cluster-bench: fingerprint quantization bits for consistent-hash sharding")
	preReq := fs.Int("pre", 0, "drift-bench: pre-shift in-distribution requests (0 = default 512)")
	shiftReq := fs.Int("shift", 0, "drift-bench: shifted-traffic request budget (0 = default 2048)")
	postReq := fs.Int("post", 0, "drift-bench: post-retrain requests (0 = default 512)")
	driftWindow := fs.Int("drift-window", 0, "drift-bench: detector window (0 = calibrated default)")
	retrainBudget := fs.Int("retrain-budget", 0, "drift-bench: tuner-evaluation cap per landmark for the drift retrain (0 = self-tuned default)")
	addr := fs.String("addr", "localhost:8077", "classify: inputtuned address")
	benchmark := fs.String("benchmark", "sort", "classify: benchmark name (sort or binpacking)")
	data := fs.String("data", "", "classify: comma-separated float input vector")
	fs.Parse(os.Args[2:])

	sc := exp.DefaultScale()
	if *scaleName == "quick" {
		sc = exp.QuickScale()
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.DisableCache = *noCache
	sc.FlatTuner = *flatTuner
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	names := exp.CaseNames
	if *caseName != "" {
		names = []string{*caseName}
	}

	switch cmd {
	case "table1":
		runTable1(names, sc, logf, *outDir, false)
	case "fig6":
		runTable1(names, sc, logf, *outDir, true)
	case "fig7":
		fmt.Println(exp.RenderFig7())
		writeFile(*outDir, "fig7.csv", exp.Fig7CSV())
	case "fig8":
		runFig8(names, sc, logf, *outDir)
	case "ablation":
		runAblation(names, sc, logf)
	case "bench":
		path := *benchJSON
		if path == "" {
			// The flagless defaults are scratch files (gitignored), so a
			// casual run can never clobber a committed BENCH_<pr>.json
			// trajectory snapshot; -nocache gets its own name so an A/B
			// report is never mistaken for the real trajectory.
			path = "BENCH_latest.json"
			if *noCache {
				path = "BENCH_latest.nocache.json"
			}
		}
		rep := exp.RunBench(names, *scaleName, sc, logf)
		fmt.Println(exp.RenderBench(rep))
		data, err := rep.BenchJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode bench report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	case "classify":
		if err := runClassify(*addr, *benchmark, *wire, *data); err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
	case "serve-bench":
		path := *benchJSON
		if path == "" {
			path = "BENCH_latest.json"
		}
		var cases []string
		if *caseName != "" {
			cases = []string{*caseName}
		}
		wires, err := parseWires(*wire)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve-bench: %v\n", err)
			os.Exit(2)
		}
		sb, err := exp.RunServeBench(exp.ServeBenchOptions{
			Cases:                cases,
			Wires:                wires,
			Clients:              *clients,
			Requests:             *requests,
			Reloads:              *reloads,
			DisableDecisionCache: *noCache,
			TraceArm:             *traceArm,
			Scale:                sc,
			Logf:                 logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(exp.RenderServeBench(sb))
		for _, res := range sb.Results {
			if res.FailedRequests != 0 {
				fmt.Fprintf(os.Stderr, "serve-bench: %d failed requests on %s\n", res.FailedRequests, res.Case)
				os.Exit(1)
			}
		}
		if err := exp.MergeServeIntoBench(path, sb); err != nil {
			fmt.Fprintf(os.Stderr, "merge into %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged serve section into %s\n", path)
	case "cluster-bench":
		path := *benchJSON
		if path == "" {
			path = "BENCH_latest.json"
		}
		grid, err := parseReplicas(*replicasFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster-bench: %v\n", err)
			os.Exit(2)
		}
		fb, err := exp.RunClusterBench(exp.ClusterBenchOptions{
			Case:         *caseName,
			Replicas:     grid,
			Clients:      *clients,
			Requests:     *requests,
			Kill:         *kill,
			QuantizeBits: *shardQuantize,
			Scale:        sc,
			Logf:         logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(exp.RenderClusterBench(fb))
		if fb.Failed() {
			fmt.Fprintln(os.Stderr, "cluster-bench: failed requests or label mismatches — the fleet did not absorb the fault")
			os.Exit(1)
		}
		if err := exp.MergeFleetIntoBench(path, fb); err != nil {
			fmt.Fprintf(os.Stderr, "merge into %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged fleet section into %s\n", path)
	case "drift-bench":
		path := *benchJSON
		if path == "" {
			path = "BENCH_latest.json"
		}
		db, err := exp.RunDriftBench(exp.DriftBenchOptions{
			Clients:       *clients,
			PreRequests:   *preReq,
			ShiftRequests: *shiftReq,
			PostRequests:  *postReq,
			Window:        *driftWindow,
			RetrainBudget: *retrainBudget,
			Scale:         sc,
			Logf:          logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "drift-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(exp.RenderDriftBench(db))
		if db.Failed() {
			fmt.Fprintln(os.Stderr, "drift-bench: failed requests or label mismatches — the reload was not seamless")
			os.Exit(1)
		}
		if !db.DetectorFired || db.Retrains == 0 {
			fmt.Fprintln(os.Stderr, "drift-bench: the drift loop never closed")
			os.Exit(1)
		}
		if err := exp.MergeDriftIntoBench(path, db); err != nil {
			fmt.Fprintf(os.Stderr, "merge into %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merged drift section into %s\n", path)
	case "all":
		rows := runTable1(names, sc, logf, *outDir, true)
		fmt.Println(exp.RenderFig7())
		writeFile(*outDir, "fig7.csv", exp.Fig7CSV())
		for _, row := range rows {
			pts := exp.Fig8Sweep(row.Model.Program, row.TestData, row.StaticPerInput,
				exp.DefaultFig8Sizes(sc.K1), 20, sc.Seed+5)
			fmt.Println(exp.RenderFig8(row.Name, pts))
			writeFile(*outDir, "fig8_"+row.Name+".csv", exp.Fig8CSV(row.Name, pts))
		}
		runAblation([]string{"sort2", "binpacking"}, sc, logf)
	default:
		usage()
		os.Exit(2)
	}
}

func runTable1(names []string, sc exp.Scale, logf func(string, ...any), outDir string, fig6 bool) []*exp.Table1Row {
	var rows []*exp.Table1Row
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		row := exp.RunCase(exp.BuildCase(name, sc), sc, logf)
		rows = append(rows, row)
		fmt.Fprintf(os.Stderr, "  production classifier: %s (features %s)\n",
			row.Report.Production, strings.Join(row.Report.SelectedFeatures, ", "))
		fmt.Fprintf(os.Stderr, "  level-2 relabelled %.1f%% of inputs; two-level satisfaction %.1f%%\n",
			100*row.Report.RelabelFraction, 100*row.TwoLevelAccuracy)
	}
	fmt.Println(exp.RenderTable1(rows))
	writeFile(outDir, "table1.csv", exp.Table1CSV(rows))
	if fig6 {
		for _, row := range rows {
			fmt.Println(exp.RenderFig6(row))
			var b strings.Builder
			b.WriteString("rank,speedup\n")
			for i, s := range exp.Fig6Series(row) {
				fmt.Fprintf(&b, "%d,%.4f\n", i, s)
			}
			writeFile(outDir, "fig6_"+row.Name+".csv", b.String())
		}
	}
	return rows
}

func runFig8(names []string, sc exp.Scale, logf func(string, ...any), outDir string) {
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		row := exp.RunCase(exp.BuildCase(name, sc), sc, logf)
		pts := exp.Fig8Sweep(row.Model.Program, row.TestData, row.StaticPerInput,
			exp.DefaultFig8Sizes(sc.K1), 20, sc.Seed+5)
		fmt.Println(exp.RenderFig8(name, pts))
		writeFile(outDir, "fig8_"+name+".csv", exp.Fig8CSV(name, pts))
	}
}

func runAblation(names []string, sc exp.Scale, logf func(string, ...any)) {
	// The paper's comparison is at few landmarks (5); keep K1 small here.
	abSc := sc
	abSc.K1 = 5
	var results []exp.AblationResult
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "ablation %s...\n", name)
		results = append(results, exp.AblationLandmarks(exp.BuildCase(name, abSc), abSc, logf))
	}
	fmt.Println(exp.RenderAblation(results))

	// Second ablation: single-centroid vs sample-based landmark tuning.
	var tsResults []exp.TuneSamplesResult
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "tune-samples ablation %s...\n", name)
		tsResults = append(tsResults,
			exp.AblationTuneSamples(exp.BuildCase(name, sc), sc, []int{1, 3}, logf)...)
	}
	fmt.Println(exp.RenderTuneSamples(tsResults))
}

// parseReplicas resolves the cluster-bench -replicas grid flag.
func parseReplicas(s string) ([]int, error) {
	var grid []int
	for _, fld := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(fld))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -replicas element %q (want positive integers)", fld)
		}
		grid = append(grid, n)
	}
	return grid, nil
}

// parseWires resolves the serve-bench -wire flag.
func parseWires(s string) ([]serve.Wire, error) {
	if s == "" || s == "both" {
		return []serve.Wire{serve.WireJSON, serve.WireBinary}, nil
	}
	w, err := serve.ParseWire(s)
	if err != nil {
		return nil, err
	}
	return []serve.Wire{w}, nil
}

// runClassify is a tiny wire-level client for a running inputtuned: it
// encodes the given vector in the chosen format (curl cannot speak the
// binary frame; this can) and prints the server's Decision JSON. Only the
// single-vector benchmarks make sense from a comma-separated flag.
func runClassify(addr, benchmark, wireName, data string) error {
	if data == "" {
		return fmt.Errorf("need -data (comma-separated floats)")
	}
	var vals []float64
	for _, fld := range strings.Split(data, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
		if err != nil {
			return fmt.Errorf("bad -data element %q: %w", fld, err)
		}
		vals = append(vals, v)
	}
	var in core.Input
	switch benchmark {
	case "sort":
		in = &sortbench.List{Data: vals}
	case "binpacking":
		in = &binpack.Items{Sizes: vals}
	default:
		return fmt.Errorf("classify supports the vector benchmarks sort and binpacking, not %q", benchmark)
	}
	// The flag's default "both" exists for serve-bench; a single POST must
	// name one format explicitly, or a user checking the binary path could
	// silently exercise JSON instead.
	w, err := serve.ParseWire(wireName)
	if err != nil {
		return fmt.Errorf("classify needs -wire json or -wire binary: %w", err)
	}
	var body bytes.Buffer
	if w == serve.WireBinary {
		if err := serve.EncodeBinaryRequest(&body, benchmark, in); err != nil {
			return err
		}
	} else {
		codec, err := serve.LookupCodec(benchmark)
		if err != nil {
			return err
		}
		raw, err := codec.EncodeJSON(in)
		if err != nil {
			return err
		}
		env, err := json.Marshal(struct {
			Benchmark string          `json:"benchmark"`
			Input     json.RawMessage `json:"input"`
		}{benchmark, raw})
		if err != nil {
			return err
		}
		body.Write(env)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/classify", &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", w.ContentType())
	if w == serve.WireBinary {
		// Binary means binary both ways: ask for the ITD1 response frame
		// too (the server falls back to JSON if its deployment pinned the
		// json wire), then decode and print the Decision as JSON so the
		// output shape matches the JSON wire's.
		req.Header.Set("Accept", serve.ContentTypeBinary)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Type") == serve.ContentTypeBinary {
		d, err := serve.DecodeBinaryDecision(resp.Body)
		if err != nil {
			return fmt.Errorf("decoding binary decision frame: %w", err)
		}
		out, err := json.Marshal(d)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Print(string(out))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}

func writeFile(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "cannot create %s: %v\n", dir, err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cannot write %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <table1|fig6|fig7|fig8|ablation|bench|serve-bench|cluster-bench|drift-bench|classify|all> [flags]
flags:
  -scale quick|default   workload scale (default "default")
  -case NAME             single test: sort1 sort2 clustering1 clustering2
                         binpacking svd poisson2d helmholtz3d
  -out DIR               also write CSVs to DIR
  -seed N                override the RNG seed
  -v                     verbose training progress
  -json FILE             bench: JSON report path. Pass BENCH_<pr>.json to
                         extend the committed perf trajectory; the default
                         is the gitignored scratch file BENCH_latest.json
                         (BENCH_latest.nocache.json under -nocache), so a
                         flagless run never clobbers a committed snapshot
  -nocache               disable the engine's memoized measurement cache
                         (any subcommand). A/B escape hatch: results are
                         byte-identical with the cache on or off; only
                         wall-clock and the cache counters change. For
                         serve-bench it disables the server's decision
                         cache instead — labels are identical either way
  -clients N             serve-bench: concurrent clients (default 8)
  -requests N            serve-bench: total requests per case and wire
                         (default 2000)
  -reloads N             serve-bench: hot reloads spaced through the run
                         (default 2; 0 = no-reload baseline); every reload
                         must complete with zero failed requests or the
                         run exits nonzero
  -trace-arm             serve-bench: add a binary arm with every request
                         traced (default true); the report records the
                         throughput delta vs the untraced binary arm
  -wire FORMAT           serve-bench: json, binary, or both (default both —
                         one load arm per format, the JSON-vs-binary A/B);
                         classify: the wire format — binary sends a binary
                         request frame AND negotiates the ITD1 binary
                         response, decoded and printed as Decision JSON
  -replicas LIST         cluster-bench: comma-separated fleet-size grid
                         (default "1,2,4"; the 1-replica arm is the
                         scaling baseline)
  -kill BOOL             cluster-bench: inject a replica kill at ~35% and
                         a restart at ~70% of the run on every
                         multi-replica arm (default true); zero failed
                         requests through the outage or exit nonzero
  -shard-quantize N      cluster-bench: feature-fingerprint quantization
                         bits for consistent-hash sharding (default 8);
                         replica decision caches stay exact regardless
  -pre N                 drift-bench: pre-shift in-distribution requests
                         (default 512); the detector must stay quiet here
  -shift N               drift-bench: shifted-traffic budget (default 2048);
                         the detector must fire and a background retrain
                         must hot-publish with zero failed requests, or the
                         run exits nonzero
  -post N                drift-bench: post-retrain requests on the new
                         model (default 512)
  -drift-window N        drift-bench: detector window in requests (default:
                         the calibrated 256; smaller fires sooner, noisier)
  -addr HOST:PORT        classify: inputtuned address (default localhost:8077)
  -benchmark NAME        classify: sort or binpacking (default sort)
  -data FLOATS           classify: comma-separated input vector, e.g.
                         "5,1,4,2" — encoded in the chosen wire format and
                         POSTed to /v1/classify (the binary wire's Go
                         client; curl cannot frame it)`)
}
