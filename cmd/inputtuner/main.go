// Command inputtuner trains the two-level input-adaptive model for one
// benchmark and reports the trained artifacts: the landmark configurations,
// the production classifier, the selected features, and deployment
// performance against the baselines.
//
//	inputtuner -bench sort2
//	inputtuner -bench binpacking -k1 24 -train 400 -test 400 -v
//	inputtuner -bench svd -json             # dump landmark configs as JSON
//	inputtuner -bench sort2 -save model.json
//
// With -load it skips training entirely and evaluates a saved artifact on
// fresh test inputs, closing the save → load → deploy loop:
//
//	inputtuner -bench sort2 -load model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"inputtune/internal/core"
	"inputtune/internal/exp"
)

func main() {
	bench := flag.String("bench", "sort2", "benchmark: sort1 sort2 clustering1 clustering2 binpacking svd poisson2d helmholtz3d")
	k1 := flag.Int("k1", 16, "number of input clusters / landmark configurations")
	train := flag.Int("train", 240, "training inputs")
	test := flag.Int("test", 240, "test inputs")
	pop := flag.Int("pop", 16, "autotuner population")
	gens := flag.Int("gens", 14, "autotuner generations")
	seed := flag.Uint64("seed", 42, "RNG seed")
	verbose := flag.Bool("v", false, "log training progress")
	asJSON := flag.Bool("json", false, "dump landmark configurations as JSON")
	savePath := flag.String("save", "", "write the trained model to this file")
	loadPath := flag.String("load", "", "evaluate a saved model artifact instead of training")
	flag.Parse()

	sc := exp.Scale{
		TrainInputs: *train, TestInputs: *test, K1: *k1,
		TunerPop: *pop, TunerGens: *gens, Seed: *seed, Parallel: true,
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	c := exp.BuildCase(*bench, sc)
	if *loadPath != "" {
		if *savePath != "" {
			fmt.Fprintln(os.Stderr, "-load and -save are mutually exclusive")
			os.Exit(2)
		}
		runLoaded(c, sc, *loadPath, logf)
		return
	}
	row := exp.RunCase(c, sc, logf)
	rep := row.Report

	fmt.Printf("benchmark        %s\n", rep.Benchmark)
	fmt.Printf("search space     %s\n", rep.SpaceSize)
	fmt.Printf("training inputs  %d (K1 = %d clusters)\n", rep.NumInputs, rep.K1)
	fmt.Printf("tuner evals      %d configurations (+%d memoized duplicates)\n", rep.TunerEvaluations, rep.TunerCacheHits)
	fmt.Printf("engine cache     %d hits / %d misses (%.1f%% hit rate, %d evictions)\n",
		rep.Engine.Hits, rep.Engine.Misses, 100*rep.Engine.HitRate(), rep.Engine.Evictions)
	fmt.Printf("train wall       %.2fs (+%.2fs test-set evaluation)\n", row.TrainSeconds, row.EvalSeconds)
	fmt.Printf("level-2 relabel  %.1f%% of inputs changed cluster\n", 100*rep.RelabelFraction)
	fmt.Printf("classifier zoo   %d candidates\n", rep.NumCandidates)
	fmt.Printf("production       %s\n", rep.Production)
	if len(rep.SelectedFeatures) > 0 {
		fmt.Printf("features used    %s\n", strings.Join(rep.SelectedFeatures, ", "))
	} else {
		fmt.Printf("features used    (none)\n")
	}
	fmt.Println()
	fmt.Println("landmark configurations (Figure 2 form):")
	space := c.Prog.Space()
	for k, lm := range row.Model.Landmarks {
		fmt.Printf("  %2d: %s\n", k, space.DescribeConfig(lm))
	}
	fmt.Println()
	fmt.Printf("deployment on %d held-out inputs (speedup over static oracle):\n", len(c.Test))
	fmt.Printf("  dynamic oracle    %6.2fx\n", row.DynamicOracle)
	fmt.Printf("  two-level (w/o fx)%6.2fx\n", row.TwoLevelNoFX)
	fmt.Printf("  two-level (w/ fx) %6.2fx   satisfaction %.1f%%\n", row.TwoLevelFX, 100*row.TwoLevelAccuracy)
	fmt.Printf("  one-level (w/o fx)%6.2fx\n", row.OneLevelNoFX)
	fmt.Printf("  one-level (w/ fx) %6.2fx   satisfaction %.1f%%\n", row.OneLevelFX, 100*row.OneLevelAccuracy)

	if *asJSON {
		fmt.Println("\nlandmark configurations:")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(row.Model.Landmarks); err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			os.Exit(1)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *savePath, err)
			os.Exit(1)
		}
		if err := core.SaveModel(row.Model, f); err != nil {
			fmt.Fprintf(os.Stderr, "save model: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "close %s: %v\n", *savePath, err)
			os.Exit(1)
		}
		fmt.Printf("\nmodel written to %s\n", *savePath)
	}
}

// runLoaded restores a SaveModel artifact and evaluates it on the case's
// held-out test inputs — no training anywhere on this path.
func runLoaded(c exp.Case, sc exp.Scale, path string, logf func(string, ...any)) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "open %s: %v\n", path, err)
		os.Exit(1)
	}
	model, err := core.LoadModel(c.Prog, f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "load model: %v\n", err)
		os.Exit(1)
	}
	rep := model.Report
	fmt.Printf("benchmark        %s (loaded from %s)\n", c.Prog.Name(), path)
	fmt.Printf("production       %s\n", rep.Production)
	if len(rep.SelectedFeatures) > 0 {
		fmt.Printf("features used    %s\n", strings.Join(rep.SelectedFeatures, ", "))
	} else {
		fmt.Printf("features used    (none)\n")
	}
	fmt.Println("\nlandmark configurations (Figure 2 form):")
	space := c.Prog.Space()
	for k, lm := range model.Landmarks {
		fmt.Printf("  %2d: %s\n", k, space.DescribeConfig(lm))
	}
	ev := exp.EvalLoadedModel(c, model, sc, logf)
	fmt.Printf("\ndeployment on %d held-out inputs (speedup over static oracle, chosen on the test set):\n", len(c.Test))
	fmt.Printf("  dynamic oracle    %6.2fx\n", ev.DynamicOracle)
	fmt.Printf("  two-level (w/o fx)%6.2fx\n", ev.TwoLevelNoFX)
	fmt.Printf("  two-level (w/ fx) %6.2fx   satisfaction %.1f%%\n", ev.TwoLevelFX, 100*ev.TwoLevelAccuracy)
	fmt.Printf("  (one-level baseline unavailable: artifacts carry no Level-1 clusters)\n")
	fmt.Printf("eval wall        %.2fs\n", ev.EvalSeconds)
}
