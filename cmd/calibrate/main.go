// Command calibrate validates the virtual-time cost model (DESIGN.md
// substitution 1) against wall-clock reality on this machine: it runs each
// sorting algorithm on each input family under both a cost.Meter and a
// real timer, and reports the two rankings side by side. The claim being
// checked is not that virtual units convert to nanoseconds, but that the
// ORDERING of algorithms on a given input — which is all the learning
// pipeline consumes — agrees.
//
//	go run ./cmd/calibrate
//	go run ./cmd/calibrate -n 8192 -reps 7
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"inputtune/internal/benchmarks/sortbench"
	"inputtune/internal/choice"
	"inputtune/internal/cost"
	"inputtune/internal/engine"
	"inputtune/internal/rng"
)

// score holds one algorithm's cost under both clocks.
type score struct {
	alg     int
	virtual float64
	wall    time.Duration
}

func main() {
	n := flag.Int("n", 4096, "list length")
	reps := flag.Int("reps", 5, "wall-clock repetitions (median taken)")
	flag.Parse()

	prog := sortbench.New()
	r := rng.New(1)
	agree, total := 0, 0
	fmt.Printf("%-14s %-24s %-24s %s\n", "input", "virtual ranking", "wall-clock ranking", "top pick agrees?")
	for _, g := range sortbench.Generators() {
		l := g.Gen(*n, r)
		// Virtual runs are deterministic and independent, so they go on the
		// shared engine pool; wall-clock runs stay serial so parallelism
		// cannot skew the very timings being calibrated.
		configs := make([]*choice.Config, len(sortbench.AltNames))
		for alg := range configs {
			configs[alg] = prog.Space().DefaultConfig()
			configs[alg].Selectors[0].Else = alg
		}
		scores := make([]score, len(configs))
		engine.Default().ForEach(len(scores), func(alg int) {
			scores[alg] = score{alg: alg, virtual: virtualTime(configs[alg], l)}
		})
		for alg := range scores {
			scores[alg].wall = wallTime(configs[alg], l, *reps)
		}
		byVirtual := append([]score(nil), scores...)
		sort.Slice(byVirtual, func(a, b int) bool { return byVirtual[a].virtual < byVirtual[b].virtual })
		byWall := append([]score(nil), scores...)
		sort.Slice(byWall, func(a, b int) bool { return byWall[a].wall < byWall[b].wall })
		match := byVirtual[0].alg == byWall[0].alg
		total++
		if match {
			agree++
		}
		fmt.Printf("%-14s %-24s %-24s %v\n", g.Name,
			rankString(byVirtual, 3), rankString(byWall, 3), match)
	}
	fmt.Printf("\ntop-algorithm agreement: %d/%d input families\n", agree, total)
	fmt.Println("(disagreements are expected on families where two algorithms run within noise of each other)")
}

// rankString renders the top algorithms like "Inser>Merge>Radix".
func rankString(s []score, top int) string {
	out := ""
	for i := 0; i < top && i < len(s); i++ {
		if i > 0 {
			out += ">"
		}
		out += shortName(s[i].alg)
	}
	return out
}

func shortName(alg int) string {
	name := sortbench.AltNames[alg]
	if len(name) > 5 {
		return name[:5]
	}
	return name
}

func virtualTime(cfg *choice.Config, l *sortbench.List) float64 {
	m := cost.NewMeter()
	work := append([]float64(nil), l.Data...)
	sortbench.SortWith(work, cfg, 0, cfg.Int(0), m)
	return m.Elapsed()
}

func wallTime(cfg *choice.Config, l *sortbench.List, reps int) time.Duration {
	var times []time.Duration
	for i := 0; i < reps; i++ {
		work := append([]float64(nil), l.Data...)
		times = append(times, cost.WallClock(func() {
			sortbench.SortWith(work, cfg, 0, cfg.Int(0), cost.NewMeter())
		}))
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2]
}
