// Command inputtuned is the serving daemon: it loads trained model
// artifacts (SaveModel output) into a hot-reloadable registry and serves
// the classification API over HTTP.
//
//	inputtuner -bench sort2 -save model.json   # train once
//	inputtuned -model model.json               # deploy
//	curl -s localhost:8077/v1/classify -d \
//	  '{"benchmark": "sort", "input": {"data": [3, 1, 2]}}'
//
// Several -model flags serve several benchmarks side by side; POST a new
// artifact to /v1/reload to hot-swap a model under live traffic (zero
// dropped requests — in-flight requests finish on the snapshot they
// started with). For a dependency-free demo, -train CASE trains a
// quick-scale model in-process instead of loading an artifact.
//
// Endpoints: POST /v1/classify, POST /v1/reload, GET /v1/models,
// GET /metrics (?format=json), GET /healthz.
//
// /v1/classify negotiates the request format on Content-Type: the JSON
// envelope above, or the length-prefixed binary frame
// (application/x-inputtune; see docs/ARCHITECTURE.md § Wire protocol) that
// large-input clients should prefer — `experiments classify -wire binary`
// is a ready-made client. -wire restricts which formats a deployment
// accepts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"inputtune/internal/core"
	"inputtune/internal/exp"
	"inputtune/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8077", "listen address")
	cacheCap := flag.Int("cache", 0, "decision-cache capacity in entries (0 = default)")
	noCache := flag.Bool("no-cache", false, "disable the decision cache")
	quantize := flag.Int("cache-quantize", 0, "decision-cache key quantization in mantissa bits (0 = exact keys; >0 trades the bit-identical guarantee for hit rate on near-duplicate inputs)")
	wireList := flag.String("wire", "json,binary", "accepted request wire formats (comma-separated: json, binary)")
	shards := flag.Int("shards", 0, "batching shards (0 = classify inline per request)")
	maxBatch := flag.Int("batch", 0, "max requests per shard batch (0 = default)")
	trainCase := flag.String("train", "", "train a quick-scale model for this case in-process (e.g. sort2)")
	verbose := flag.Bool("v", false, "log requests setup progress")
	var modelPaths []string
	flag.Func("model", "model artifact to serve (repeatable)", func(path string) error {
		modelPaths = append(modelPaths, path)
		return nil
	})
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if len(modelPaths) == 0 && *trainCase == "" {
		fmt.Fprintln(os.Stderr, "need at least one -model artifact or -train CASE")
		flag.Usage()
		os.Exit(2)
	}
	var wires []serve.Wire
	for _, s := range strings.Split(*wireList, ",") {
		w, err := serve.ParseWire(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "-wire: %v\n", err)
			os.Exit(2)
		}
		wires = append(wires, w)
	}

	reg := serve.BuiltinRegistry()
	svc := serve.NewService(reg, serve.Options{
		Cache: serve.CacheOptions{
			Capacity:     *cacheCap,
			Disable:      *noCache,
			QuantizeBits: *quantize,
		},
		Shards:   *shards,
		MaxBatch: *maxBatch,
		Wires:    wires,
	})
	defer svc.Close()

	for _, path := range modelPaths {
		artifact, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read %s: %v\n", path, err)
			os.Exit(1)
		}
		snap, err := svc.Load(artifact)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load %s: %v\n", path, err)
			os.Exit(1)
		}
		logf("loaded %s: benchmark %s, production %s, generation %d",
			path, snap.Benchmark, snap.Model.Production.Name, snap.Generation)
	}
	if *trainCase != "" {
		sc := exp.QuickScale()
		c := exp.BuildCase(*trainCase, sc)
		trainLogf := func(string, ...any) {}
		if *verbose {
			trainLogf = logf
		}
		logf("training quick-scale model for %s (%d inputs)...", *trainCase, len(c.Train))
		model := core.TrainModel(c.Prog, c.Train, core.Options{
			K1: sc.K1, Seed: sc.Seed, TunerPopulation: sc.TunerPop,
			TunerGenerations: sc.TunerGens, Parallel: true, Logf: trainLogf,
		})
		snap, err := reg.Install(model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "install trained model: %v\n", err)
			os.Exit(1)
		}
		logf("trained %s: benchmark %s, production %s, generation %d",
			*trainCase, snap.Benchmark, model.Production.Name, snap.Generation)
	}

	handler := serve.NewHandler(svc)
	if *verbose {
		handler = logRequests(handler, logf)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logf("inputtuned serving %v on http://%s", reg.Names(), *addr)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logf("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		os.Exit(1)
	}
}

// logRequests wraps the handler with one access-log line per request.
func logRequests(next http.Handler, logf func(string, ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
