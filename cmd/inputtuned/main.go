// Command inputtuned is the serving daemon: it loads trained model
// artifacts (SaveModel output) into a hot-reloadable registry and serves
// the classification API over HTTP.
//
//	inputtuner -bench sort2 -save model.json   # train once
//	inputtuned -model model.json               # deploy
//	curl -s localhost:8077/v1/classify -d \
//	  '{"benchmark": "sort", "input": {"data": [3, 1, 2]}}'
//
// Several -model flags serve several benchmarks side by side; POST a new
// artifact to /v1/reload to hot-swap a model under live traffic (zero
// dropped requests — in-flight requests finish on the snapshot they
// started with). For a dependency-free demo, -train CASE trains a
// quick-scale model in-process instead of loading an artifact.
//
// -fleet N runs a multi-replica fleet behind one listener: N independent
// serving stacks (each with its own registry and decision cache) behind a
// consistent-hash router that shards requests on the quantized input
// fingerprint (-shard-quantize), health-checks its replicas, and rolls
// /v1/reload artifacts across them one at a time. SIGTERM drains
// gracefully in either mode: new requests are rejected while in-flight
// ones finish.
//
// -drift enables the adaptive retraining loop in either mode (models
// must carry a distribution summary): served traffic is watched for
// input-distribution drift, and a detected shift triggers a background
// retrain on retained served inputs, published through the hot-reload
// path — svc reload in single mode, a rolling reload across the fleet.
//
// Endpoints: POST /v1/classify, POST /v1/reload, GET /v1/models (single
// mode), GET /metrics (?format=json), GET /healthz, GET /debug/traces
// (when tracing is on). -debug-addr starts a second listener with
// net/http/pprof profiles plus /debug/traces, and implies request
// tracing (1 in 1) unless -trace-sample overrides it. Logs are
// structured (log/slog); -log-level and -log-format tune them.
//
// /v1/classify negotiates the request format on Content-Type: the JSON
// envelope above, or the length-prefixed binary frame
// (application/x-inputtune; see docs/ARCHITECTURE.md § Wire protocol) that
// large-input clients should prefer — `experiments classify -wire binary`
// is a ready-made client. -wire restricts which formats a deployment
// accepts.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"inputtune/internal/core"
	"inputtune/internal/drift"
	"inputtune/internal/exp"
	"inputtune/internal/fleet"
	"inputtune/internal/obs"
	"inputtune/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8077", "listen address")
	cacheCap := flag.Int("cache", 0, "decision-cache capacity in entries (0 = default)")
	noCache := flag.Bool("no-cache", false, "disable the decision cache")
	quantize := flag.Int("cache-quantize", 0, "decision-cache key quantization in mantissa bits (0 = exact keys; >0 trades the bit-identical guarantee for hit rate on near-duplicate inputs)")
	wireList := flag.String("wire", "json,binary", "accepted request wire formats (comma-separated: json, binary)")
	shards := flag.Int("shards", 0, "batching shards (0 = classify inline per request)")
	maxBatch := flag.Int("batch", 0, "max requests per shard batch (0 = default)")
	trainCase := flag.String("train", "", "train a quick-scale model for this case in-process (e.g. sort2)")
	fleetN := flag.Int("fleet", 0, "run N in-process replicas behind a consistent-hash router (0/1 = single service)")
	shardQuantize := flag.Int("shard-quantize", 8, "fleet: fingerprint quantization bits for request sharding (replica caches stay exact)")
	driftOn := flag.Bool("drift", false, "watch served traffic for input-distribution drift and retrain + hot-reload automatically (models must carry a distribution summary)")
	driftWindow := flag.Int("drift-window", 0, "drift: detector window in requests (0 = calibrated default)")
	driftCapacity := flag.Int("drift-capacity", 0, "drift: retention reservoir capacity (0 = default)")
	driftMinRetain := flag.Int("drift-min-retain", 0, "drift: minimum retained inputs before a retrain may start (0 = default)")
	retrainBudget := flag.Int("retrain-budget", 0, "drift: tuner-evaluation cap per landmark for drift retrains (0 = the self-tuning meta-loop's own default)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof profiles and /debug/traces on this extra listener (empty = disabled)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N requests (0 = auto: 1 when -debug-addr is set, otherwise off; <0 forces off)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	verbose := flag.Bool("v", false, "shorthand for -log-level debug (adds per-request and setup-progress records)")
	var modelPaths []string
	flag.Func("model", "model artifact to serve (repeatable)", func(path string) error {
		modelPaths = append(modelPaths, path)
		return nil
	})
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "-log-level: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		level = slog.LevelDebug
	}
	var handlerOpts = &slog.HandlerOptions{Level: level}
	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, handlerOpts)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, handlerOpts)
	default:
		fmt.Fprintf(os.Stderr, "-log-format: unknown format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(logHandler)
	if len(modelPaths) == 0 && *trainCase == "" {
		fmt.Fprintln(os.Stderr, "need at least one -model artifact or -train CASE")
		flag.Usage()
		os.Exit(2)
	}
	var wires []serve.Wire
	for _, s := range strings.Split(*wireList, ",") {
		w, err := serve.ParseWire(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "-wire: %v\n", err)
			os.Exit(2)
		}
		wires = append(wires, w)
	}

	// Collect every artifact first: files, then the optional in-process
	// training run. Fleet mode loads the same bytes into every replica, so
	// all replicas start at the same model version (same artifact hash).
	var artifacts [][]byte
	for _, path := range modelPaths {
		artifact, err := os.ReadFile(path)
		if err != nil {
			logger.Error("reading model artifact failed", "path", path, "error", err)
			os.Exit(1)
		}
		artifacts = append(artifacts, artifact)
	}
	if *trainCase != "" {
		sc := exp.QuickScale()
		c := exp.BuildCase(*trainCase, sc)
		trainLogf := func(string, ...any) {}
		if logger.Enabled(context.Background(), slog.LevelDebug) {
			trainLogf = func(format string, args ...any) {
				logger.Debug(fmt.Sprintf(format, args...), "component", "train")
			}
		}
		logger.Info("training quick-scale model", "case", *trainCase, "inputs", len(c.Train))
		model := core.TrainModel(c.Prog, c.Train, core.Options{
			K1: sc.K1, Seed: sc.Seed, TunerPopulation: sc.TunerPop,
			TunerGenerations: sc.TunerGens, Parallel: true, Logf: trainLogf,
		})
		var buf bytes.Buffer
		if err := core.SaveModel(model, &buf); err != nil {
			logger.Error("serialising trained model failed", "error", err)
			os.Exit(1)
		}
		artifacts = append(artifacts, buf.Bytes())
	}

	// One tracer is shared by every participant in the process — router,
	// replicas, drift loop — so records tagged with different sites merge
	// under one trace ID at /debug/traces. -trace-sample 0 means "auto":
	// tracing rides along whenever the debug listener is up.
	sampleEvery := *traceSample
	if sampleEvery == 0 && *debugAddr != "" {
		sampleEvery = 1
	}
	var tracer *obs.Tracer
	if sampleEvery > 0 {
		tracer = obs.New(obs.Options{SampleEvery: sampleEvery})
	}

	svcOpts := serve.Options{
		Cache: serve.CacheOptions{
			Capacity:     *cacheCap,
			Disable:      *noCache,
			QuantizeBits: *quantize,
		},
		Shards:   *shards,
		MaxBatch: *maxBatch,
		Wires:    wires,
		Tracer:   tracer,
	}
	// newService builds one full serving stack with every artifact loaded —
	// the single daemon, or one fleet replica. The registry is returned too
	// so the drift controller can resolve baselines from it. site names the
	// service's spans in merged traces ("" = the serve default).
	newService := func(tag, site string) (*serve.Service, *serve.Registry) {
		opts := svcOpts
		opts.TraceSite = site
		reg := serve.BuiltinRegistry()
		svc := serve.NewService(reg, opts)
		for _, artifact := range artifacts {
			snap, err := svc.Load(artifact)
			if err != nil {
				logger.Error("loading artifact failed", "replica", tag, "error", err)
				os.Exit(1)
			}
			logger.Info("loaded model", "replica", tag, "benchmark", snap.Benchmark,
				"production", snap.Model.Production.Name, "generation", snap.Generation)
		}
		return svc, reg
	}
	// newDriftController wires the adaptive-retraining loop: retrains run
	// at the quick training scale (the same budget -train uses), and
	// publish goes through the given hot-reload path.
	newDriftController := func(reg *serve.Registry, publish func(string, []byte) error) *drift.Controller {
		sc := exp.QuickScale()
		return drift.NewController(drift.Options{
			Registry: reg,
			Train: core.Options{
				K1: sc.K1, Seed: sc.Seed, TunerPopulation: sc.TunerPop,
				TunerGenerations: sc.TunerGens, Parallel: true,
			},
			Detector:      drift.DetectorOptions{Window: *driftWindow},
			Capacity:      *driftCapacity,
			MinRetain:     *driftMinRetain,
			RetrainBudget: *retrainBudget,
			Publish:       publish,
			Logger:        logger.With("component", "drift"),
			Tracer:        tracer,
		})
	}

	var handler http.Handler
	var drain func(context.Context) error
	var serving string
	var driftCtrl *drift.Controller
	if *fleetN > 1 {
		replicas := make([]fleet.Replica, *fleetN)
		services := make([]*serve.Service, *fleetN)
		regs := make([]*serve.Registry, *fleetN)
		for i := range replicas {
			name := fmt.Sprintf("replica-%d", i)
			services[i], regs[i] = newService(name, name)
			replicas[i] = fleet.NewLocalReplica(name, services[i])
		}
		fleetLogf := func(string, ...any) {}
		if logger.Enabled(context.Background(), slog.LevelDebug) {
			fleetLogf = func(format string, args ...any) {
				logger.Debug(fmt.Sprintf(format, args...), "component", "fleet")
			}
		}
		var rt *fleet.Router
		if *driftOn {
			// One shared controller: the router shards traffic, so every
			// replica's sample tap feeds the same detector and reservoir,
			// and a triggered retrain publishes through the rolling reload
			// (replica by replica, zero dropped requests). Baselines
			// resolve from replica 0's registry — the rollout keeps every
			// replica on the same artifact, and samples racing a rollout
			// are dropped by the controller's generation check. Only
			// replica 0 reports the loop's status, so the fleet roll-up
			// counts the shared loop once, not once per replica.
			driftCtrl = newDriftController(regs[0], func(_ string, artifact []byte) error {
				_, err := rt.RollingReload(artifact)
				return err
			})
			for _, svc := range services {
				svc.SetObserver(driftCtrl)
			}
			services[0].SetDriftProvider(driftCtrl.Status)
		}
		rt = fleet.NewRouter(replicas, fleet.Options{
			QuantizeBits:   *shardQuantize,
			HealthInterval: 500 * time.Millisecond,
			Logf:           fleetLogf,
			Tracer:         tracer,
		})
		handler = fleet.NewHandler(rt)
		drain = rt.Close
		serving = fmt.Sprintf("%d-replica fleet (shard quantize %d bits)", *fleetN, *shardQuantize)
	} else {
		svc, reg := newService("inputtuned", "")
		if *driftOn {
			driftCtrl = newDriftController(reg, func(_ string, artifact []byte) error {
				_, err := svc.Load(artifact)
				return err
			})
			driftCtrl.Bind(svc)
		}
		handler = serve.NewHandler(svc)
		drain = func(ctx context.Context) error {
			svc.BeginDrain()
			err := svc.Drain(ctx)
			svc.Close()
			return err
		}
		serving = "single service"
	}
	if *driftOn {
		serving += " + drift-adaptive retraining"
		// A drain must also let any in-flight background retrain finish —
		// killing the process mid-TrainModel would just lose the work.
		inner := drain
		drain = func(ctx context.Context) error {
			err := inner(ctx)
			driftCtrl.Wait()
			return err
		}
	}
	if logger.Enabled(context.Background(), slog.LevelDebug) {
		handler = logRequests(handler, logger)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug listener is a separate address on purpose: pprof profiles
	// and trace dumps stay off the serving port, so they can be firewalled
	// (or bound to localhost) independently of traffic.
	var debugServer *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("GET /debug/pprof/", pprof.Index)
		dmux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		if tracer != nil {
			dmux.Handle("GET /debug/traces", obs.Handler(tracer))
		}
		debugServer = &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		logger.Info("debug endpoints up", "addr", *debugAddr, "tracing", tracer.Enabled())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("serving", "mode", serving, "addr", *addr,
		"trace_sample", sampleEvery, "log_level", level.String())

	select {
	case err := <-errCh:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drain first — /healthz flips to 503 and new classifies are rejected
	// while in-flight requests finish — then close the listener.
	if err := drain(shutdownCtx); err != nil {
		logger.Error("drain failed", "error", err)
	}
	if debugServer != nil {
		_ = debugServer.Shutdown(shutdownCtx)
	}
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown failed", "error", err)
		os.Exit(1)
	}
}

// logRequests wraps the handler with one debug-level access record per
// request (active only when the logger passes debug).
func logRequests(next http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Debug("request", "method", r.Method, "path", r.URL.Path,
			"duration", time.Since(start))
	})
}
